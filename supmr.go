// Package supmr is a Go reproduction of "SupMR: Circumventing Disk and
// Memory Bandwidth Bottlenecks for Scale-up MapReduce" (Sevilla et al.,
// 2014): a scale-up MapReduce runtime whose ingest chunk pipeline
// overlaps reading input with map computation and whose merge phase runs
// a single-round parallel p-way merge instead of iterative pairwise
// merging.
//
// This package is the public facade. Applications implement Job (map,
// reduce, key ordering), pick an intermediate container matched to their
// key distribution, and call Run with a Config selecting the traditional
// runtime or the SupMR pipeline:
//
//	cfg := supmr.Config{Runtime: supmr.RuntimeSupMR, ChunkBytes: 1 << 20}
//	report, err := supmr.RunBytes[string, int64](supmr.WordCountJob(), data,
//	        supmr.NewHashContainer[string, int64](64, supmr.HashString, sum), cfg)
//
// The heavy machinery lives in internal packages: internal/core (the
// pipeline), internal/mapreduce (the traditional runtime),
// internal/container, internal/chunk, internal/sortalgo, plus the
// simulated substrates internal/storage, internal/netsim, internal/hdfs
// and the paper-scale performance model internal/perfmodel.
package supmr

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/core"
	"supmr/internal/egress"
	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/metrics"
	"supmr/internal/shuffle"
	"supmr/internal/sortalgo"
	"supmr/internal/spill"
	"supmr/internal/storage"
	"supmr/internal/tuner"
)

// Job is the user application: Map parses an input split into key-value
// pairs, Reduce folds the values of one key, and Less orders keys for
// the merged output. Implement Combiner (Combine(a, b V) V) to let hash
// and array containers fold values eagerly.
type Job[K comparable, V any] = kv.App[K, V]

// Pair is a key-value pair.
type Pair[K any, V any] = kv.Pair[K, V]

// Emitter receives pairs from Map.
type Emitter[K any, V any] = kv.Emitter[K, V]

// Container stores intermediate pairs between map and reduce.
type Container[K comparable, V any] = container.Container[K, V]

// Boundary locates record boundaries for chunking and splitting.
type Boundary = chunk.Boundary

// Input is any byte source the runtimes can ingest: simulated local
// files, HDFS files, or in-memory buffers.
type Input = chunk.Input

// Stream produces ingest chunks.
type Stream = chunk.Stream

// Chunk is one ingested unit of input.
type Chunk = chunk.Chunk

// MergeAlgo selects the merge-phase algorithm.
type MergeAlgo = sortalgo.MergeAlgo

// Merge algorithm choices.
const (
	// MergePairwise is the original Phoenix iterative merge sort.
	MergePairwise = sortalgo.MergePairwise
	// MergePWay is SupMR's single-round parallel p-way merge.
	MergePWay = sortalgo.MergePWay
)

// Boundaries for common record formats.
var (
	// NewlineRecords marks '\n'-terminated records (text).
	NewlineRecords Boundary = chunk.NewlineBoundary{}
	// CRLFRecords marks "\r\n"-terminated records (terasort).
	CRLFRecords Boundary = chunk.CRLFBoundary{}
)

// FixedRecords marks fixed-width records of the given byte width.
func FixedRecords(width int64) Boundary { return chunk.FixedBoundary{Width: width} }

// Runtime selects which runtime executes the job.
type Runtime int

// Runtime choices.
const (
	// RuntimeTraditional is the Phoenix++-style baseline: ingest the
	// whole input, then map, reduce and pairwise-merge.
	RuntimeTraditional Runtime = iota
	// RuntimeSupMR is the paper's contribution: the ingest chunk
	// pipeline with a persistent container and the p-way merge.
	RuntimeSupMR
)

// String names the runtime.
func (r Runtime) String() string {
	if r == RuntimeSupMR {
		return "supmr"
	}
	return "traditional"
}

// Config controls an execution.
type Config struct {
	// Runtime selects the baseline or the SupMR pipeline.
	Runtime Runtime
	// Context, when set, bounds the job: cancelling it makes the run
	// abort promptly (ingest between chunks, phases between tasks) and
	// return the cancellation cause, typically context.Canceled.
	// RunContext is the usual way to set it.
	Context context.Context
	// Workers is the number of worker goroutines per phase
	// (default: GOMAXPROCS).
	Workers int
	// Splits is the number of input splits per map wave
	// (default: 4*Workers).
	Splits int
	// ChunkBytes is the SupMR inter-file ingest chunk size. Zero means
	// the whole input arrives as a single chunk.
	ChunkBytes int64
	// FilesPerChunk enables intra-file chunking over multi-file inputs:
	// that many files coalesce into each ingest chunk.
	FilesPerChunk int
	// Merge overrides the merge algorithm. By default the traditional
	// runtime merges pairwise and SupMR uses the p-way merge.
	Merge *MergeAlgo
	// RadixSort overrides the fixed-width-key sort fast path (radix run
	// sort plus columnar loser-tree merge). nil — the default — and
	// &true enable it for apps that opt in via kv.FixedKeyApp; &false
	// is the -radixsort=off ablation, forcing every run onto the
	// comparison sort. Output is byte-identical either way.
	RadixSort *bool
	// Boundary adjusts chunk and split cut points to record boundaries
	// (default: newline).
	Boundary Boundary
	// TraceContexts, when positive, enables CPU-utilization tracing
	// normalized to that many hardware contexts.
	TraceContexts int
	// TraceBucket is the utilization trace bucket width
	// (default: 100ms).
	TraceBucket time.Duration
	// Clock provides time for phase measurement; defaults to a fresh
	// wall clock. Pass the storage clock so device waits and phase
	// times share a timeline.
	Clock storage.Clock
	// ResetEachRound re-initializes the container at every SupMR map
	// round — the broken traditional behaviour, exposed only for the
	// persistent-container ablation.
	ResetEachRound bool
	// AdaptiveChunks enables the chunk-size feedback loop (the paper's
	// §VIII future work): the pipeline observes each round's ingest and
	// map durations and retunes the ingest chunk size. ChunkBytes is
	// the starting size. Only effective with RuntimeSupMR over a
	// resizable stream (RunFile / StreamFile inputs).
	AdaptiveChunks bool
	// HybridChunks selects hybrid inter/intra-file chunking for
	// multi-file inputs (RunFiles): small files coalesce up to
	// ChunkBytes while oversized files are split at ChunkBytes.
	HybridChunks bool
	// MemoryBudget caps the intermediate container's resident bytes.
	// When positive (SupMR runtime only), the pipeline checks the
	// container size between ingest rounds and drains it to key-sorted
	// runs on SpillDevice whenever it exceeds the budget; the merge
	// phase streams the runs back in its single p-way round, so output
	// is identical to an unbudgeted run. Zero means unbudgeted. Requires
	// a container whose footprint can actually be released (hash or
	// key-range; the array container is rejected) and codec-supported
	// key/value types (string, []byte, int, int64, uint64, float64).
	MemoryBudget int64
	// SpillDevice charges the spill runs' IO time; point it at the
	// ingest device so spill traffic contends for the same bandwidth.
	// Defaults to an infinitely fast device on the config clock.
	SpillDevice Device
	// Faults, when set, injects the injector's deterministic fault plan
	// into the job: ingest reads (RunFile/RunFiles/RunBytes inputs) and
	// the spill path (device reservations and run payloads). HDFS-side
	// faults are configured separately via HDFSConfig.Faults. Build with
	// NewFaultInjector; share one injector per job.
	Faults *FaultInjector
	// Retry retries transient injected faults with capped exponential
	// backoff on the job clock: ingest reads retry at the failed ReadAt
	// and spill writes rewrite the whole torn run. Permanent faults and
	// genuine errors fail immediately. The zero policy disables retries.
	Retry RetryPolicy
	// IOLanes is the number of dedicated IO workers ingest fans out
	// across (SupMR runtime): each chunk read is split into up to
	// IOLanes segments whose device waits overlap — the striped
	// multi-lane ingest path. On an HDFS input the segments fetch their
	// blocks from distinct datanodes in parallel. <= 1 (the default)
	// keeps the paper's single ingest thread. The traditional runtime's
	// single whole-input read is not segmented; extra lanes sit idle.
	IOLanes int
	// PrefetchDepth is the SupMR prefetch ring depth: up to this many
	// ingest chunks are kept in flight ahead of the map wave. <= 1 (the
	// default) is the paper's double buffering — exactly one chunk
	// ahead. Deeper rings smooth over ingest jitter at the cost of that
	// many resident chunk buffers.
	PrefetchDepth int
	// Engine, when set, submits the job to a shared multi-job Engine
	// instead of creating a dedicated worker pool: the run passes
	// admission control, receives a memory grant carved from the
	// engine's global budget (MemoryBudget becomes the request, the
	// grant may be smaller), and its operations interleave with
	// concurrent jobs under the fair-share scheduler. Output is
	// byte-identical to a solo run; Workers/IOLanes here are ignored
	// (the engine's substrate wins) and TraceContexts plus
	// Report.Allocs are disabled (process-wide instruments cannot be
	// attributed to one of several concurrent jobs).
	Engine *Engine
	// Tenant names the submitting tenant for the engine's per-tenant
	// stats rollup (engine mode only; "" rolls up under "default").
	Tenant string
	// Weight is the job's fair-share weight on the engine's operation
	// scheduler (engine mode only; minimum and default 1 — a weight-2
	// job receives twice the operation service of a weight-1 job; 0
	// selects the default, negative values are rejected).
	Weight int
	// Memo enables content-addressed incremental recompute (SupMR
	// runtime, single-file inputs): ingest switches to content-defined
	// chunking (boundaries derived from chunk content, so appends and
	// local edits do not shift downstream chunks), each chunk's
	// map/combine output is memoized in a MemoStore keyed by the chunk's
	// content hash, and a chunk whose key hits the cache skips the map
	// wave entirely — its cached combined output replays into the merge.
	// Output is byte-identical to a memo-off run. ChunkBytes sizes the
	// content-defined chunks (min ChunkBytes/2, target ChunkBytes,
	// max 2*ChunkBytes). Incompatible with AdaptiveChunks,
	// ResetEachRound and the traditional runtime; MemoryBudget is
	// ignored (the memo path drains the container after every chunk, so
	// residency stays bounded without a spiller — see Report.Notes).
	Memo bool
	// MemoStore is the cache a memoized run uses. Nil selects the
	// engine's shared store (engine mode, EngineConfig.Memo) or, solo, a
	// private store living only for this run. Share one store across
	// runs to make re-runs incremental. Jobs with different key/value
	// types or different applications sharing a store must use distinct
	// MemoKeySpace values.
	MemoStore *MemoStore
	// MemoKeySpace namespaces this job's cache entries within the store
	// so distinct applications never replay each other's output ("" is a
	// valid shared namespace).
	MemoKeySpace string
	// MemoBudget caps the private store built when neither MemoStore
	// nor an engine store is supplied (default 64 MiB). Ignored when a
	// store is supplied — its own budget governs.
	MemoBudget int64
	// Nodes, when >= 1, runs the job on a simulated cluster of that
	// many SupMR worker nodes (SupMR runtime only): ingest chunks route
	// round-robin to nodes, each node runs the scale-up pipeline into
	// its own container clone and drains it per chunk, and the nodes
	// exchange hash-partitioned intermediate runs as checksummed frames
	// over simulated per-node network links before the final merge (see
	// internal/shuffle and DESIGN.md §15). Output is byte-identical to
	// a single-node run. 1 is the degenerate one-node cluster —
	// exercising the same code path — and 0, the default, keeps the
	// scale-up pipeline. Requires a container implementing the Fresher
	// extension (all built-ins do) and codec-supported key/value types;
	// incompatible with Engine, Memo, AdaptiveChunks and ResetEachRound.
	// MemoryBudget is accepted but ignored: the multi-node pipeline
	// drains the container after every chunk, so residency stays
	// bounded without a spiller (see Report.Notes).
	Nodes int
	// InNodeCombiner gates the in-node combiner tier of a multi-node
	// run: one pre-aggregation pass across all of a node's local
	// workers' output before anything is partitioned for transmission.
	// nil — the default — and &true enable it; &false is the
	// -innode-combiner=off ablation, transmitting every per-chunk run
	// as-is. Output is byte-identical either way (destination merges
	// re-reduce); only Stats.ShuffleBytes and ShuffleBytesSaved change.
	InNodeCombiner *bool
	// NodeLinkBW is each node port's bandwidth in bytes/sec for a
	// multi-node run (default GigabitLinkBW); NodeLinkLatency is the
	// per-transfer one-way latency (default 0). Shuffle transfer time
	// lands on the job clock like any other simulated IO.
	NodeLinkBW      float64
	NodeLinkLatency time.Duration
	// EgressLanes, when >= 1, materializes the merged output after the
	// merge phase: pairs are rendered one "key\tvalue\n" line each (the
	// digest encoding), the stream is cut into fixed-size extents and
	// the extents are written concurrently across up to EgressLanes IO
	// lanes — the "parallel restore" pattern that removes the serial
	// output tail. 1 is the serial-writer ablation (-egress-lanes=1);
	// output bytes and the extent manifest are byte-identical at any
	// lane count. The materialized output lands in Report.Egress, which
	// implements Input so it can feed a subsequent job's ingest without
	// a file round-trip (see internal/dag). 0, the default, skips
	// output materialization entirely (the Report's in-memory pairs are
	// the only output, as before).
	EgressLanes int
	// EgressExtentBytes is the egress extent size (default 256 KiB).
	EgressExtentBytes int64
	// EgressDevice charges egress write time; point it at the ingest
	// device so output traffic contends for the same bandwidth. Nil
	// models a free output path.
	EgressDevice Device
}

// Report is the outcome of a run: globally key-sorted output pairs,
// per-phase times (the paper's Table II row), execution statistics, and
// the utilization trace when tracing was enabled.
type Report[K comparable, V any] struct {
	Pairs []Pair[K, V]
	Times metrics.PhaseTimes
	Stats mapreduce.Stats
	// Allocs attributes heap allocations (object count and bytes) to each
	// phase via ReadMemStats deltas at phase boundaries. Process-wide and
	// approximate — concurrent background allocation lands in whichever
	// phase is open — but it makes the map hot path's allocation
	// behaviour visible per run.
	Allocs metrics.PhaseAllocs
	Trace  *metrics.Trace
	// Markers are phase-boundary annotations for the trace (present when
	// tracing was enabled); render with Trace.AnnotatedASCII.
	Markers []metrics.Marker
	// SpillBytes samples cumulative bytes spilled over the job timeline,
	// one point per run written (empty when no memory budget was set or
	// nothing spilled).
	SpillBytes []metrics.SeriesPoint
	// Notes lists configuration caveats the run silently adapted to —
	// instruments disabled in engine mode, knobs ignored in memo mode —
	// so a report never hides that a requested measurement is absent.
	Notes []string
	// Egress is the materialized output when Config.EgressLanes was set:
	// the merged pairs rendered one "key\tvalue\n" line each, written as
	// checksummed extents with a stitching manifest. It implements Input,
	// so it can be streamed into another job's ingest directly.
	Egress *EgressOutput
}

// EgressOutput is a materialized parallel-egress output: a stitched,
// manifest-verified view over the written extents that also implements
// Input (see internal/egress).
type EgressOutput = egress.Output

// Stats re-exports the execution statistics type found in
// Report.Stats, including the spill counters SpilledRuns/SpilledBytes.
type Stats = mapreduce.Stats

func (c Config) clock() storage.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return storage.NewRealClock()
}

func (c Config) boundary() Boundary {
	if c.Boundary != nil {
		return c.Boundary
	}
	return NewlineRecords
}

func (c Config) radixDisabled() bool {
	return c.RadixSort != nil && !*c.RadixSort
}

func (c Config) innodeCombinerOff() bool {
	return c.InNodeCombiner != nil && !*c.InNodeCombiner
}

// validateNodes rejects configurations the multi-node pipeline cannot
// honour, rather than silently changing their meaning.
func (c Config) validateNodes() error {
	if c.Runtime != RuntimeSupMR {
		return errors.New("supmr: Nodes requires RuntimeSupMR (each node runs the scale-up pipeline over its local chunks)")
	}
	if c.Memo {
		return errors.New("supmr: Nodes is incompatible with Memo (memoization keys per-chunk drains of one container; multi-node runs shard chunks across node containers)")
	}
	if c.AdaptiveChunks {
		return errors.New("supmr: Nodes is incompatible with AdaptiveChunks (chunk-size feedback would make the node routing of each byte depend on timing)")
	}
	if c.ResetEachRound {
		return errors.New("supmr: Nodes is incompatible with ResetEachRound (multi-node mode drains containers per chunk already)")
	}
	return nil
}

func (c Config) mergeAlgo() MergeAlgo {
	if c.Merge != nil {
		return *c.Merge
	}
	if c.Runtime == RuntimeSupMR {
		return MergePWay
	}
	return MergePairwise
}

// mapreduceOptions converts a Config into runtime options (without
// instrumentation — used by auxiliary drivers such as RunKMeans).
func mapreduceOptions(cfg Config) mapreduce.Options {
	return mapreduce.Options{
		Workers:       cfg.Workers,
		Splits:        cfg.Splits,
		Merge:         cfg.mergeAlgo(),
		Boundary:      cfg.boundary(),
		RadixDisabled: cfg.radixDisabled(),
	}
}

// Run executes the job over an explicit chunk stream. Most callers use
// RunFile, RunFiles or RunBytes, which build the stream.
//
// Every phase runs on one persistent worker pool created here for the
// job (the execution engine of internal/exec): map, reduce, sort and
// merge draw compute workers from it, ingest runs on its dedicated IO
// worker, and cfg.Context cancellation or a panicking task aborts the
// whole pipeline with a job error. With cfg.Engine set, the job is
// instead submitted to the shared multi-job engine (see Engine).
func Run[K comparable, V any](job Job[K, V], input Stream, cont Container[K, V], cfg Config) (*Report[K, V], error) {
	if job == nil {
		return nil, errors.New("supmr: nil job")
	}
	if input == nil {
		return nil, errors.New("supmr: nil input stream")
	}
	if cont == nil {
		return nil, errors.New("supmr: nil container")
	}
	if cfg.Engine != nil {
		if cfg.Nodes > 0 {
			return nil, errors.New("supmr: Nodes is incompatible with Engine (the multi-job engine schedules operations on one shared substrate; run multi-node jobs solo)")
		}
		return runOnEngine(cfg.Engine, job, input, cont, cfg)
	}
	clk := cfg.clock()
	timer := metrics.NewTimer(clk.Now).WithAllocs()
	var rec *metrics.UtilRecorder
	var markers *metrics.MarkerLog
	if cfg.TraceContexts > 0 {
		rec = metrics.NewUtilRecorder(cfg.TraceContexts, clk.Now)
		markers = &metrics.MarkerLog{}
		timer.WithMarkers(markers)
	}
	ioWorkers := cfg.IOLanes
	if cfg.EgressLanes > ioWorkers {
		// Egress fans wider than ingest: size the IO pool for the wider
		// of the two so egress extents actually overlap.
		ioWorkers = cfg.EgressLanes
	}
	pool := exec.NewPool(cfg.Context, exec.Config{
		Workers:   cfg.Workers,
		IOWorkers: ioWorkers,
		Recorder:  rec,
		Now:       clk.Now,
	})
	defer pool.Close()
	rep, err := runWithExecutor(job, input, cont, cfg, runSubstrate{
		pool:   pool,
		clk:    clk,
		timer:  timer,
		rec:    rec,
		budget: cfg.MemoryBudget,
	})
	if err != nil {
		return nil, err
	}
	rep.Allocs = timer.Allocs()
	if rec != nil {
		bucket := cfg.TraceBucket
		if bucket <= 0 {
			bucket = 100 * time.Millisecond
		}
		rep.Trace = rec.Build(bucket, rep.Times.Total)
		rep.Markers = markers.Markers()
	}
	return rep, nil
}

// runSubstrate is the execution substrate a run is bound to: a
// dedicated pool for a solo run, a JobPool handle plus shared freelist
// and budget grant in engine mode.
type runSubstrate struct {
	pool  exec.Executor
	clk   storage.Clock
	timer *metrics.Timer
	rec   *metrics.UtilRecorder
	// budget is the container-residency cap for this run: the config's
	// MemoryBudget for a solo run, the engine's carved grant otherwise.
	budget int64
	// frees, when set, is the engine's shared chunk-buffer freelist.
	frees *chunk.FreeList
	// memo, when set, is the engine's shared memo store, used by
	// memoized submissions that bring no store of their own.
	memo *MemoStore
}

// runWithExecutor is the runtime-selection body shared by solo and
// engine-mode runs: it builds the spill store when a budget is set,
// runs the configured runtime on the substrate's executor, and
// assembles the substrate-independent part of the Report.
func runWithExecutor[K comparable, V any](job Job[K, V], input Stream, cont Container[K, V], cfg Config, sub runSubstrate) (*Report[K, V], error) {
	ro := mapreduce.Options{
		Workers:       cfg.Workers,
		Splits:        cfg.Splits,
		Merge:         cfg.mergeAlgo(),
		Boundary:      cfg.boundary(),
		RadixDisabled: cfg.radixDisabled(),
		Timer:         sub.timer,
		Recorder:      sub.rec,
		Pool:          sub.pool,
	}

	var (
		res *mapreduce.Result[K, V]
		err error
	)
	if err := cfg.validateMemo(); err != nil {
		return nil, err
	}
	var notes []string
	if cfg.Nodes > 0 {
		if err := cfg.validateNodes(); err != nil {
			return nil, err
		}
		if cfg.MemoryBudget > 0 {
			notes = append(notes, "nodes: MemoryBudget ignored (per-chunk drains bound container residency without the spill path)")
		}
		res, err := shuffle.Run(job, input, cont, shuffle.Options{
			Options:     ro,
			Nodes:       cfg.Nodes,
			CombinerOff: cfg.innodeCombinerOff(),
			LinkBW:      cfg.NodeLinkBW,
			LinkLatency: cfg.NodeLinkLatency,
			Clock:       sub.clk,
			Injector:    cfg.Faults,
			Retry:       cfg.Retry,
			Counters:    cfg.faultCounters(),
		})
		if err != nil {
			return nil, err
		}
		rep := &Report[K, V]{Pairs: res.Pairs, Times: res.Times, Stats: res.Stats, Notes: notes}
		if err := runEgress(cfg, sub, rep); err != nil {
			return nil, err
		}
		rep.Stats.Faults = cfg.faultCounters().Snapshot()
		return rep, nil
	}
	var store *spill.Store
	if cfg.wouldSpill(sub.budget) {
		if cfg.Runtime != RuntimeSupMR {
			return nil, errors.New("supmr: MemoryBudget requires RuntimeSupMR (the traditional runtime ingests everything up front; bounding the container would not bound the job)")
		}
		dev := cfg.SpillDevice
		if dev == nil {
			dev = storage.NewNullDevice(sub.clk)
		}
		sc := spill.StoreConfig{Device: dev}
		if cfg.Faults != nil {
			// Site "spill" covers run-read reservations; each run's payload
			// is its own "runN" site so torn writes hit individual runs.
			sc.Device = cfg.Faults.WrapDevice("spill", dev)
			sc.Backing = faultBacking{inj: cfg.Faults, inner: spill.MemBacking{}}
		}
		store, err = spill.NewStore(sc)
		if err != nil {
			return nil, err
		}
		defer store.Close()
	}
	var memoSt *MemoStore
	if cfg.Memo {
		var owned bool
		memoSt, owned, err = cfg.memoStoreFor(sub)
		if err != nil {
			return nil, err
		}
		if owned {
			defer memoSt.Close()
		}
		if cfg.MemoryBudget > 0 {
			notes = append(notes, "memo: MemoryBudget ignored (per-chunk drains bound container residency without the spill path)")
		}
	}
	if cfg.Runtime == RuntimeSupMR {
		co := core.Options{
			Options:        ro,
			ResetEachRound: cfg.ResetEachRound,
			MemoryBudget:   sub.budget,
			SpillStore:     store,
			Retry:          cfg.Retry,
			FaultCounters:  cfg.faultCounters(),
			PrefetchDepth:  cfg.PrefetchDepth,
			IOLanes:        cfg.IOLanes,
			Freelist:       sub.frees,
		}
		if memoSt != nil {
			co.MemoStore = memoSt.store
			co.MemoSpace = cfg.MemoKeySpace
		}
		if cfg.AdaptiveChunks {
			initial := cfg.ChunkBytes
			if initial <= 0 {
				initial = tuner.Recommend(0, 0, input.TotalBytes(), 2*time.Millisecond, tuner.Limits{})
			}
			lim := tuner.Limits{Min: 64 << 10}
			if total := input.TotalBytes(); total > 0 {
				lim.Max = total / 2
			}
			co.Tuner = tuner.NewController(tuner.ControllerConfig{Initial: initial, Limits: lim})
		}
		res, err = core.Run(job, input, cont, co)
	} else {
		res, err = mapreduce.Run(job, input, cont, ro)
	}
	if err != nil {
		return nil, err
	}
	rep := &Report[K, V]{Pairs: res.Pairs, Times: res.Times, Stats: res.Stats, Notes: notes}
	if err := runEgress(cfg, sub, rep); err != nil {
		return nil, err
	}
	rep.Stats.Faults = cfg.faultCounters().Snapshot()
	if store != nil {
		rep.SpillBytes = store.Series()
	}
	return rep, nil
}

// runEgress materializes rep's merged pairs across the IO lanes when
// the config asks for it: each pair renders as one "key\tvalue\n" line
// (exactly the digest encoding, so the materialized bytes hash to the
// job's output digest and parse as text input for a chained job), the
// stream cuts into fixed-size extents, and up to EgressLanes extents
// are written concurrently with whole-extent retry of torn writes.
// The phase lands in Times under metrics.PhaseEgress and the job total
// is re-stamped to include it.
func runEgress[K comparable, V any](cfg Config, sub runSubstrate, rep *Report[K, V]) error {
	if cfg.EgressLanes == 0 {
		return nil
	}
	if cfg.EgressLanes < 0 {
		return fmt.Errorf("supmr: EgressLanes must be positive, got %d", cfg.EgressLanes)
	}
	if cfg.EgressExtentBytes < 0 {
		return fmt.Errorf("supmr: EgressExtentBytes must be positive, got %d", cfg.EgressExtentBytes)
	}
	sub.timer.StartPhase(metrics.PhaseEgress)
	defer func() {
		sub.timer.EndPhase(metrics.PhaseEgress)
		// The runtime already stamped the job total before egress ran;
		// re-finish so Times covers the egress tail too.
		rep.Times = sub.timer.Finish()
	}()
	laneBase := sub.pool.LaneBytes()
	taskBase := sub.pool.TaskStats()["egress"]
	w, err := egress.NewWriter(egress.Config{
		Pool:        sub.pool,
		Lanes:       cfg.EgressLanes,
		ExtentBytes: cfg.EgressExtentBytes,
		Device:      cfg.EgressDevice,
		Injector:    cfg.Faults,
		Retry:       cfg.Retry,
		Clock:       sub.clk,
		Counters:    cfg.faultCounters(),
	})
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	for _, p := range rep.Pairs {
		fmt.Fprintf(bw, "%v\t%v\n", p.Key, p.Val)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	out, err := w.Close()
	if err != nil {
		return err
	}
	rep.Egress = out
	rep.Stats.EgressBytes = out.Size()
	rep.Stats.EgressExtents = out.Extents()
	if lanes := sub.pool.LaneBytes(); len(lanes) > 1 {
		delta := make([]int64, len(lanes))
		for i, n := range lanes {
			if i < len(laneBase) {
				n -= laneBase[i]
			}
			delta[i] = n
		}
		rep.Stats.EgressLaneBytes = delta
	}
	ts := sub.pool.TaskStats()
	et := ts["egress"]
	rep.Stats.EgressBusy = et.Busy - taskBase.Busy
	rep.Stats.EgressStall = et.QueueWait - taskBase.QueueWait
	if rep.Stats.Tasks != nil {
		// Refresh the per-phase task snapshot the runtime took before
		// egress ran so the egress tasks appear in it.
		rep.Stats.Tasks = ts
	}
	return nil
}

// RunContext is Run bounded by ctx: cancelling ctx aborts the job
// promptly (within the current round) and the call returns the
// cancellation cause — context.Canceled for a plain cancel. RunFile,
// RunFiles and RunBytes honour the same context via cfg.Context.
func RunContext[K comparable, V any](ctx context.Context, job Job[K, V], input Stream, cont Container[K, V], cfg Config) (*Report[K, V], error) {
	cfg.Context = ctx
	return Run(job, input, cont, cfg)
}

// RunFile executes the job over a single (possibly simulated) file,
// chunked per the config: SupMR uses inter-file ingest chunks of
// ChunkBytes; the traditional runtime ingests the whole file.
func RunFile[K comparable, V any](job Job[K, V], file Input, cont Container[K, V], cfg Config) (*Report[K, V], error) {
	stream, err := StreamFile(file, cfg)
	if err != nil {
		return nil, err
	}
	return Run(job, stream, cont, cfg)
}

// RunFiles executes the job over a set of files using intra-file
// chunking (FilesPerChunk files per ingest chunk; default 1).
func RunFiles[K comparable, V any](job Job[K, V], files []Input, cont Container[K, V], cfg Config) (*Report[K, V], error) {
	stream, err := StreamFiles(files, cfg)
	if err != nil {
		return nil, err
	}
	return Run(job, stream, cont, cfg)
}

// RunBytes executes the job over an in-memory buffer (no simulated
// device: ingest is instantaneous). Handy for tests and quickstarts.
func RunBytes[K comparable, V any](job Job[K, V], data []byte, cont Container[K, V], cfg Config) (*Report[K, V], error) {
	clk := cfg.clock()
	cfg.Clock = clk
	f := storage.BytesFile("<memory>", data, storage.NewNullDevice(clk))
	return RunFile(job, f, cont, cfg)
}

// StreamFile builds the chunk stream RunFile would use.
func StreamFile(file Input, cfg Config) (Stream, error) {
	if file == nil {
		return nil, errors.New("supmr: nil input file")
	}
	file = cfg.wrapInput(file)
	if cfg.Memo {
		if err := cfg.validateMemo(); err != nil {
			return nil, err
		}
		// Content-defined chunking: cut points derive from chunk content,
		// so a re-run over appended or locally edited input re-produces
		// the unchanged chunks' hashes and hits the memo cache. Sizes
		// bracket ChunkBytes: expected cut ≈ min + avg-mask target.
		min := cfg.ChunkBytes / 2
		if min < 1 {
			min = 1
		}
		cdcStream, err := chunk.NewCDCFile(file, min, min, 2*cfg.ChunkBytes, cfg.boundary())
		if err != nil {
			return nil, fmt.Errorf("supmr: %w", err)
		}
		return cdcStream, nil
	}
	chunkBytes := cfg.ChunkBytes
	if chunkBytes <= 0 && cfg.AdaptiveChunks && cfg.Runtime == RuntimeSupMR {
		// No explicit size: start from the static advisor's pick and let
		// the feedback loop refine it.
		chunkBytes = tuner.Recommend(0, 0, file.Size(), 2*time.Millisecond, tuner.Limits{})
	}
	wholeInput := cfg.Runtime != RuntimeSupMR || chunkBytes <= 0
	if wholeInput {
		chunkBytes = file.Size()
		if chunkBytes <= 0 {
			chunkBytes = 1
		}
	}
	inter, err := chunk.NewInterFile(file, chunkBytes, cfg.boundary())
	if err != nil {
		return nil, fmt.Errorf("supmr: %w", err)
	}
	if wholeInput {
		return chunk.NewWholeInput(inter), nil
	}
	return inter, nil
}

// StreamFiles builds the multi-file chunk stream RunFiles would use:
// intra-file chunking by default, hybrid inter/intra-file chunking when
// cfg.HybridChunks is set.
func StreamFiles(files []Input, cfg Config) (Stream, error) {
	if cfg.Memo {
		return nil, errors.New("supmr: Memo requires a single-file input (RunFile/StreamFile): multi-file chunk composition is not content-stable across file-set changes")
	}
	files = cfg.wrapInputs(files)
	var (
		s   Stream
		err error
	)
	if cfg.HybridChunks {
		size := cfg.ChunkBytes
		if size <= 0 {
			size = 4 << 20
		}
		s, err = chunk.NewHybrid(files, size, cfg.boundary())
	} else {
		per := cfg.FilesPerChunk
		if per <= 0 {
			per = 1
		}
		s, err = chunk.NewIntraFile(files, per)
	}
	if err != nil {
		return nil, fmt.Errorf("supmr: %w", err)
	}
	if cfg.Runtime != RuntimeSupMR {
		return chunk.NewWholeInput(s), nil
	}
	return s, nil
}

// NewHashContainer returns the default Phoenix++ hash container: keys
// hash into shards; combine (optional) folds values at insertion.
func NewHashContainer[K comparable, V any](shards int, hash func(K) uint64, combine func(a, b V) V) Container[K, V] {
	return container.NewHash[K, V](shards, hash, combine)
}

// NewFlatHashContainer returns the flat combining container for string
// keys: open addressing over arena-interned keys, zero steady-state
// allocation on the map hot path (the container behind -flatcombiner).
func NewFlatHashContainer[V any](shards int, combine func(a, b V) V) Container[string, V] {
	return container.NewFlatHash[V](shards, combine)
}

// NewArrayContainer returns the array container for dense int keys in
// [0, width).
func NewArrayContainer[V any](width, stripes int, combine func(a, b V) V) Container[int, V] {
	return container.NewArray[V](width, stripes, combine)
}

// NewKeyRangeContainer returns Phoenix's unlocked storage for
// unique-key applications such as sort. partitions fixes the reduce
// partition count (<=0 selects the default of 64).
func NewKeyRangeContainer[K comparable, V any](partitions int) Container[K, V] {
	return container.NewKeyRange[K, V](partitions)
}

// HashString hashes string keys for NewHashContainer.
func HashString(s string) uint64 { return container.StringHasher(s) }

// HashInt hashes int keys for NewHashContainer.
func HashInt(i int) uint64 { return container.IntHasher(i) }

// HashUint64 hashes uint64 keys for NewHashContainer.
func HashUint64(x uint64) uint64 { return container.Uint64Hasher(x) }
