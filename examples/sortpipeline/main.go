// Sortpipeline: the paper's sort experiment end to end — terasort-style
// records on a simulated RAID, ingested through the chunk pipeline, with
// the p-way merge against the iterative pairwise baseline.
//
//	go run ./examples/sortpipeline
package main

import (
	"fmt"
	"log"

	"supmr"
)

const (
	records = 80_000             // 8 MB of 100-byte records
	diskBW  = 64 << 20           // scaled RAID bandwidth
	chunk   = records * 100 / 10 // ten ingest chunks
)

func run(rt supmr.Runtime, merge supmr.MergeAlgo, chunkBytes int64) *supmr.Report[string, uint64] {
	clock := supmr.NewClock()
	dev, err := supmr.NewDisk("raid", diskBW, 0, clock)
	if err != nil {
		log.Fatal(err)
	}
	input, err := supmr.TeraFile("terasort.dat", records, 42, dev)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := supmr.RunFile[string, uint64](
		supmr.SortJob(),
		input,
		supmr.SortContainer(), // Phoenix's unlocked storage (§V-B)
		supmr.Config{
			Runtime:    rt,
			ChunkBytes: chunkBytes,
			Boundary:   supmr.CRLFRecords,
			Merge:      &merge,
			Splits:     64,
			Clock:      clock,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	base := run(supmr.RuntimeTraditional, supmr.MergePairwise, 0)
	fmt.Printf("traditional (pairwise merge): %s\n", base.Times.String())
	fmt.Printf("  merge rounds: %d\n", base.Stats.MergeRounds)

	sup := run(supmr.RuntimeSupMR, supmr.MergePWay, chunk)
	fmt.Printf("SupMR (ingest pipeline + p-way merge): %s\n", sup.Times.String())
	fmt.Printf("  merge rounds: %d (single-round p-way)\n", sup.Stats.MergeRounds)

	// Both produce the same globally sorted order.
	if len(base.Pairs) != len(sup.Pairs) {
		log.Fatalf("output sizes differ: %d vs %d", len(base.Pairs), len(sup.Pairs))
	}
	for i := range base.Pairs {
		if base.Pairs[i].Key != sup.Pairs[i].Key {
			log.Fatalf("outputs diverge at %d", i)
		}
	}
	fmt.Printf("\nboth runtimes sorted %d records identically; total speedup %.2fx\n",
		len(base.Pairs), float64(base.Times.Total)/float64(sup.Times.Total))
}
