// Kmeans: iterative MapReduce on SupMR. Each Lloyd iteration is one
// complete pipelined job over the same input; an LRU block cache in
// front of the simulated disk makes every iteration after the first
// free of device time — the data-reuse idea of the iterative-MapReduce
// systems (Twister, HaLoop) the paper's related work discusses.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"supmr"
)

func main() {
	clock := supmr.NewClock()
	disk, err := supmr.NewDisk("hdd", 24<<20, 0, clock)
	if err != nil {
		log.Fatal(err)
	}
	cached, err := supmr.NewCachedDevice(disk, 64<<10, 4096)
	if err != nil {
		log.Fatal(err)
	}

	// 2-D byte points from three well-separated blobs.
	var data []byte
	state := uint64(2024)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	centers := [][2]int{{35, 35}, {200, 70}, {110, 215}}
	const perCluster = 40_000
	for i := 0; i < perCluster; i++ {
		for _, c := range centers {
			data = append(data,
				byte(c[0]+int(next()%13)-6),
				byte(c[1]+int(next()%13)-6))
		}
	}
	points, err := supmr.NewByteFile("points.bin", data, cached)
	if err != nil {
		log.Fatal(err)
	}

	km := supmr.KMeansJob(3, 2)
	km.Epsilon = 0.05
	// Seed centroids from actual data points (the generator interleaves
	// blobs, so the first three points cover all three).
	km.Centroids = [][]float64{
		{float64(data[0]), float64(data[1])},
		{float64(data[2]), float64(data[3])},
		{float64(data[4]), float64(data[5])},
	}
	start := clock.Now()
	res, err := supmr.RunKMeans(km, points, supmr.Config{
		ChunkBytes: 64 << 10,
		Clock:      clock,
	}, 30)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := clock.Now() - start

	fmt.Printf("clustered %d points in %d iterations (%.2fs, %d total map waves)\n",
		len(data)/2, res.Iterations, elapsed.Seconds(), res.Waves)
	for i, c := range km.Centroids {
		fmt.Printf("  cluster %d: %6d points at (%.1f, %.1f)\n",
			i, res.Sizes[i], c[0], c[1])
	}
	fmt.Printf("device served %s; later iterations hit the cache\n",
		byteCount(diskBytes(disk)))
}

func diskBytes(d supmr.Device) int64 { return d.Stats().BytesRead }

func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
