// Custom: writing your own SupMR application. Implements a log-level
// histogram job from scratch — Map/Reduce/Less plus the optional
// Combine — and runs it with intra-file chunking over many small
// simulated log files, the Hadoop-style many-small-files input shape.
//
// Also demonstrates the set_data() callback (core.ChunkAware) through
// the built-in inverted index job.
//
//	go run ./examples/custom
package main

import (
	"bytes"
	"fmt"
	"log"

	"supmr"
)

// levelCount is a user-defined Job: it maps log lines to their severity
// level and counts occurrences per level.
type levelCount struct{}

var levels = [][]byte{[]byte("DEBUG"), []byte("INFO"), []byte("WARN"), []byte("ERROR")}

// Map scans each line for a known severity token.
func (levelCount) Map(split []byte, emit supmr.Emitter[string, int64]) {
	for len(split) > 0 {
		nl := bytes.IndexByte(split, '\n')
		var line []byte
		if nl < 0 {
			line, split = split, nil
		} else {
			line, split = split[:nl], split[nl+1:]
		}
		for _, lv := range levels {
			if bytes.Contains(line, lv) {
				emit.Emit(string(lv), 1)
				break
			}
		}
	}
}

// Reduce sums the per-level counts.
func (levelCount) Reduce(_ string, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

// Combine lets the hash container fold counts at insertion time.
func (levelCount) Combine(a, b int64) int64 { return a + b }

// Less orders levels alphabetically in the final output.
func (levelCount) Less(a, b string) bool { return a < b }

func main() {
	clock := supmr.NewClock()
	dev, err := supmr.NewDisk("logdisk", 32<<20, 0, clock)
	if err != nil {
		log.Fatal(err)
	}

	// 24 small "log files": reuse the text generator and sprinkle level
	// tokens by wrapping its fill.
	files := make([]supmr.Input, 24)
	for i := range files {
		f, err := supmr.TextFile(fmt.Sprintf("app-%02d.log", i), 256<<10, int64(i), dev)
		if err != nil {
			log.Fatal(err)
		}
		files[i] = logView{f}
	}

	rep, err := supmr.RunFiles[string, int64](
		levelCount{},
		files,
		supmr.NewHashContainer[string, int64](8, supmr.HashString, levelCount{}.Combine),
		supmr.Config{
			Runtime:       supmr.RuntimeSupMR,
			FilesPerChunk: 4, // intra-file chunking: 24 files -> 6 chunks
			Clock:         clock,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level histogram over %d files (%d ingest chunks):\n",
		len(files), rep.Stats.MapWaves)
	for _, p := range rep.Pairs {
		fmt.Printf("  %-6s %d\n", p.Key, p.Val)
	}
	fmt.Printf("phases: %s\n\n", rep.Times.String())

	// Bonus: the built-in inverted index uses the set_data() callback to
	// learn which file each ingest chunk came from.
	idxFiles := files[:6]
	ix := supmr.InvertedIndexJob()
	rep2, err := supmr.RunFiles[string, []string](ix, idxFiles, ix.NewContainer(16),
		supmr.Config{Runtime: supmr.RuntimeSupMR, FilesPerChunk: 1, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inverted index over %d files: %d terms; e.g. %q appears in %v\n",
		len(idxFiles), len(rep2.Pairs), rep2.Pairs[0].Key, rep2.Pairs[0].Val)
}

// logView decorates generated text with severity tokens so levelCount
// has something to find: it rewrites the first word of each 256-byte
// region into a level name, deterministically.
type logView struct{ inner supmr.Input }

func (v logView) Name() string { return v.inner.Name() }
func (v logView) Size() int64  { return v.inner.Size() }

func (v logView) ReadAt(p []byte, off int64) (int, error) {
	n, err := v.inner.ReadAt(p, off)
	for i := 0; i < n; i++ {
		abs := off + int64(i)
		if abs%256 == 0 {
			lv := levels[(abs/256)%int64(len(levels))]
			copy(p[i:n], lv)
		}
	}
	return n, err
}
