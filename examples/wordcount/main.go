// Wordcount: the chunk-size sweep of Fig. 5 at laptop scale. One word
// count job runs over a simulated 3-disk RAID with no chunks, small
// chunks and large chunks, showing how the ingest chunk pipeline hides
// the map phase inside the (bandwidth-bound) read and how chunk
// granularity changes utilization.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"time"

	"supmr"
)

const inputSize = 12 << 20

func run(label string, rt supmr.Runtime, chunkBytes int64) {
	clock := supmr.NewClock()
	// The paper's RAID-0 scaled down 64x: three spindles, ~6 MB/s total.
	raid, err := supmr.NewTestbedRAID(clock, 1.0/64)
	if err != nil {
		log.Fatal(err)
	}
	input, err := supmr.TextFile("corpus.txt", inputSize, 7, raid)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := supmr.RunFile[string, int64](
		supmr.WordCountJob(), input, supmr.WordCountContainer(64),
		supmr.Config{
			Runtime:       rt,
			ChunkBytes:    chunkBytes,
			Clock:         clock,
			TraceContexts: 4,
			TraceBucket:   100 * time.Millisecond,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n%s\n", label, rep.Times.String())
	fmt.Printf("map waves: %d   mean utilization: %.0f%%\n",
		rep.Stats.MapWaves, rep.Trace.MeanTotal())
	fmt.Print(rep.Trace.ASCII(10))
	fmt.Println()
}

func main() {
	run("Fig 5a analog: no ingest chunks (traditional runtime)", supmr.RuntimeTraditional, 0)
	run("Fig 5b analog: small chunks (input/64)", supmr.RuntimeSupMR, inputSize/64)
	run("Fig 5c analog: large chunks (input/3)", supmr.RuntimeSupMR, inputSize/3)
}
