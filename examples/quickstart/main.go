// Quickstart: count words with the SupMR runtime in a dozen lines.
//
// A Job supplies Map, Reduce and Less; the hash container (with the
// job's combiner) stores intermediate pairs; Run executes the ingest
// chunk pipeline and returns key-sorted results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"supmr"
)

func main() {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog\n", 1000) +
		strings.Repeat("pack my box with five dozen liquor jugs\n", 500)

	report, err := supmr.RunBytes[string, int64](
		supmr.WordCountJob(),         // map = tokenize, reduce = sum
		[]byte(text),                 // in-memory input
		supmr.WordCountContainer(16), // hash container with combiner
		supmr.Config{
			Runtime:    supmr.RuntimeSupMR,
			ChunkBytes: 8 << 10, // stream the input as 8 KiB ingest chunks
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phases: %s\n", report.Times.String())
	fmt.Printf("%d distinct words over %d map waves\n\n",
		len(report.Pairs), report.Stats.MapWaves)
	fmt.Println("top words:")
	top := report.Pairs
	// Pairs come back sorted by key; pick the highest counts for display.
	best := make([]supmr.Pair[string, int64], len(top))
	copy(best, top)
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].Val > best[i].Val {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	for i := 0; i < 5 && i < len(best); i++ {
		fmt.Printf("  %-8s %d\n", best[i].Key, best[i].Val)
	}
}
