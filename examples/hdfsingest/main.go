// Hdfsingest: ingest straight from a simulated 32-node HDFS behind one
// shared 1 Gbit-style link (the Fig. 7 scenario). Compares copying the
// input to the compute node before the job against SupMR's pipelined
// ingest from the distributed file system.
//
//	go run ./examples/hdfsingest
package main

import (
	"fmt"
	"log"
	"time"

	"supmr"
)

const (
	inputSize = 10 << 20
	linkBW    = 5 << 20 // scaled shared link
)

func newCluster() (supmr.Clock, *supmr.HDFSFile) {
	clock := supmr.NewClock()
	cluster, err := supmr.NewHDFS(supmr.HDFSConfig{
		Nodes:     32,
		BlockSize: 1 << 20,
		DiskBW:    64 << 20,
		LinkBW:    linkBW,
		Latency:   200 * time.Microsecond,
	}, clock)
	if err != nil {
		log.Fatal(err)
	}
	f, err := cluster.Create("logs/part-00000.txt", inputSize, supmr.TextFill(11))
	if err != nil {
		log.Fatal(err)
	}
	return clock, f
}

func main() {
	// Baseline: hdfs dfs -copyToLocal, then compute on the local copy.
	clock, remote := newCluster()
	start := clock.Now()
	local, err := remote.CopyToLocal(supmr.NewFastDevice(clock), nil)
	if err != nil {
		log.Fatal(err)
	}
	copyTime := clock.Now() - start
	rep, err := supmr.RunFile[string, int64](supmr.WordCountJob(), local,
		supmr.WordCountContainer(64),
		supmr.Config{Runtime: supmr.RuntimeTraditional, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("copy-then-compute: copy=%.2fs + job=%.2fs = %.2fs\n",
		copyTime.Seconds(), rep.Times.Total.Seconds(),
		(copyTime + rep.Times.Total).Seconds())

	// SupMR: the runtime ingests chunks from HDFS while mappers work.
	clock2, remote2 := newCluster()
	rep2, err := supmr.RunFile[string, int64](supmr.WordCountJob(), remote2,
		supmr.WordCountContainer(64),
		supmr.Config{Runtime: supmr.RuntimeSupMR, ChunkBytes: 2 << 20, Clock: clock2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SupMR pipelined:   %s\n", rep2.Times.String())
	fmt.Printf("\nsame result either way: %d distinct words (pipelined saved %.2fs)\n",
		len(rep2.Pairs),
		(copyTime + rep.Times.Total - rep2.Times.Total).Seconds())
}
