package supmr

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"
)

// Facade-level tests of the parallel egress path: Config.EgressLanes
// materializes the merged output, byte-identical at any lane count,
// with the egress phase and counters surfaced in the report.

func egressInput(t *testing.T) []byte {
	t.Helper()
	data := make([]byte, 512<<10)
	TextFill(11)(0, data)
	return data
}

func runEgressWC(t *testing.T, data []byte, cfg Config) *Report[string, int64] {
	t.Helper()
	cfg.Runtime = RuntimeSupMR
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = 64 << 10
	}
	rep, err := RunBytes[string, int64](WordCountJob(), data, WordCountContainer(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func pairDigest[K comparable, V any](pairs []Pair[K, V]) [32]byte {
	h := sha256.New()
	for _, p := range pairs {
		fmt.Fprintf(h, "%v\t%v\n", p.Key, p.Val)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

func TestEgressBytesHashToOutputDigest(t *testing.T) {
	data := egressInput(t)
	rep := runEgressWC(t, data, Config{EgressLanes: 2, EgressExtentBytes: 8 << 10})
	if rep.Egress == nil {
		t.Fatal("EgressLanes set but Report.Egress is nil")
	}
	out, err := rep.Egress.Bytes()
	if err != nil {
		t.Fatalf("Egress.Bytes: %v", err)
	}
	if sha256.Sum256(out) != pairDigest(rep.Pairs) {
		t.Fatal("egressed bytes do not hash to the pair digest")
	}
	if rep.Stats.EgressBytes != int64(len(out)) {
		t.Errorf("EgressBytes = %d, egressed %d", rep.Stats.EgressBytes, len(out))
	}
	if rep.Stats.EgressExtents != rep.Egress.Extents() || rep.Stats.EgressExtents < 2 {
		t.Errorf("EgressExtents = %d, output extents = %d", rep.Stats.EgressExtents, rep.Egress.Extents())
	}
	if !strings.Contains(rep.Times.String(), "egress") {
		t.Errorf("phase times missing egress: %s", rep.Times)
	}
	if eg := rep.Times.Get(PhaseEgress); eg <= 0 || rep.Times.Total < eg {
		t.Errorf("total %v does not cover egress %v", rep.Times.Total, eg)
	}
}

func TestEgressLaneCountsByteIdentical(t *testing.T) {
	data := egressInput(t)
	var ref []byte
	var refMan []byte
	for _, lanes := range []int{1, 2, 4} {
		rep := runEgressWC(t, data, Config{EgressLanes: lanes, EgressExtentBytes: 8 << 10})
		out, err := rep.Egress.Bytes()
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		man := rep.Egress.Manifest().Encode()
		if lanes == 1 {
			ref, refMan = out, man
			continue
		}
		if !bytes.Equal(out, ref) {
			t.Fatalf("lanes=%d: egress differs from the serial writer", lanes)
		}
		if !bytes.Equal(man, refMan) {
			t.Fatalf("lanes=%d: manifest differs from the serial writer", lanes)
		}
	}
}

func TestEgressLaneAttribution(t *testing.T) {
	data := egressInput(t)
	rep := runEgressWC(t, data, Config{IOLanes: 2, EgressLanes: 4, EgressExtentBytes: 4 << 10})
	var sum int64
	for _, b := range rep.Stats.EgressLaneBytes {
		sum += b
	}
	if sum != rep.Stats.EgressBytes {
		t.Errorf("lane bytes sum %d, egressed %d (per-lane: %v)", sum, rep.Stats.EgressBytes, rep.Stats.EgressLaneBytes)
	}
	if len(rep.Stats.EgressLaneBytes) != 4 {
		t.Errorf("lane count = %d, want the widened pool's 4", len(rep.Stats.EgressLaneBytes))
	}
	if rep.Stats.EgressBusy <= 0 {
		t.Errorf("EgressBusy = %v, want > 0", rep.Stats.EgressBusy)
	}
}

func TestEgressUnderChaosMatchesClean(t *testing.T) {
	data := egressInput(t)
	clean := runEgressWC(t, data, Config{EgressLanes: 4, EgressExtentBytes: 8 << 10})
	cleanBytes, err := clean.Egress.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	clock := NewClock()
	faulted := runEgressWC(t, data, Config{
		EgressLanes: 4, EgressExtentBytes: 8 << 10, Clock: clock,
		Faults: NewFaultInjector(FaultPlan{Seed: 9, WriteErrProb: 0.2, ReadErrEvery: 7}, clock),
		Retry:  RetryPolicy{MaxAttempts: 8},
	})
	fb, err := faulted.Egress.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, cleanBytes) {
		t.Fatal("faulted egress diverged from clean run")
	}
	if faulted.Stats.Faults.Injected == 0 || faulted.Stats.Faults.Recovered == 0 {
		t.Errorf("chaos run exercised no faults: %+v", faulted.Stats.Faults)
	}
}

func TestEgressOnEngine(t *testing.T) {
	data := egressInput(t)
	solo := runEgressWC(t, data, Config{EgressLanes: 2, EgressExtentBytes: 8 << 10})
	soloBytes, err := solo.Egress.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Workers: 4, MaxJobs: 2})
	defer e.Close()
	eng := runEgressWC(t, data, Config{Engine: e, EgressLanes: 2, EgressExtentBytes: 8 << 10})
	engBytes, err := eng.Egress.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(engBytes, soloBytes) {
		t.Fatal("engine-mode egress differs from solo")
	}
	if eng.Stats.EgressBytes != solo.Stats.EgressBytes {
		t.Errorf("engine EgressBytes %d, solo %d", eng.Stats.EgressBytes, solo.Stats.EgressBytes)
	}
}

func TestEgressConfigValidation(t *testing.T) {
	data := []byte("a b c\n")
	if _, err := RunBytes[string, int64](WordCountJob(), data, WordCountContainer(2), Config{EgressLanes: -1}); err == nil {
		t.Error("negative EgressLanes accepted")
	}
	if _, err := RunBytes[string, int64](WordCountJob(), data, WordCountContainer(2), Config{EgressLanes: 1, EgressExtentBytes: -5}); err == nil {
		t.Error("negative EgressExtentBytes accepted")
	}
	rep, err := RunBytes[string, int64](WordCountJob(), data, WordCountContainer(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Egress != nil || rep.Stats.EgressBytes != 0 {
		t.Error("egress ran without EgressLanes")
	}
}
