package supmr

import (
	"errors"

	"supmr/internal/memo"
	"supmr/internal/spill"
	"supmr/internal/storage"
)

// This file exposes the content-addressed memo cache (internal/memo)
// through the public API: a MemoStore holds memoized per-chunk
// map/combine output keyed by chunk content hash, so re-running a job
// over input that mostly matches a previous run replays the cached
// output instead of mapping again. Enable it with Config.Memo; share
// one store across runs (or set EngineConfig.Memo to share it across
// engine submissions) to make re-runs incremental.

// MemoStats counts memo-store traffic: hits, misses, stored and
// evicted entries, torn writes detected on read-back, and current
// occupancy. See MemoStore.Stats.
type MemoStats = memo.Stats

// MemoConfig sizes a MemoStore.
type MemoConfig struct {
	// Device charges the cache's read and write IO; point it at the
	// ingest device so cache traffic contends for the same bandwidth.
	// Defaults to an infinitely fast device on Clock.
	Device Device
	// Clock backs the default device (default: wall clock). Ignored
	// when Device is set.
	Clock Clock
	// Budget caps the store's resident payload bytes; least-recently
	// used entries evict beyond it. Default 64 MiB.
	Budget int64
	// Faults, when set, injects the injector's fault plan into the
	// cache: device reservations fault under site "memo" and each
	// entry's payload under its own "memoN" site, so cache reads can
	// fail and cache writes can tear. A torn entry is detected via its
	// stored digest and treated as a miss — cache faults never corrupt
	// job output.
	Faults *FaultInjector
}

// MemoStore is a shared content-addressed cache of per-chunk
// map/combine output. Safe for concurrent use; one store may serve
// many runs, jobs and engine submissions. Close releases its entries.
type MemoStore struct {
	store *memo.Store
}

// NewMemoStore builds a memo store on the simulated storage substrate.
func NewMemoStore(cfg MemoConfig) (*MemoStore, error) {
	dev := cfg.Device
	if dev == nil {
		clk := cfg.Clock
		if clk == nil {
			clk = storage.NewRealClock()
		}
		dev = storage.NewNullDevice(clk)
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = 64 << 20
	}
	mc := memo.Config{Device: dev, Budget: budget}
	if cfg.Faults != nil {
		mc.Device = cfg.Faults.WrapDevice("memo", dev)
		mc.Backing = faultBacking{inj: cfg.Faults, inner: spill.MemBacking{}, prefix: "memo"}
	}
	st, err := memo.NewStore(mc)
	if err != nil {
		return nil, err
	}
	return &MemoStore{store: st}, nil
}

// Stats snapshots the store's counters and occupancy.
func (m *MemoStore) Stats() MemoStats { return m.store.Stats() }

// Close releases the store's entries. Runs using the store must have
// finished.
func (m *MemoStore) Close() error { return m.store.Close() }

// memoStoreFor resolves the store a memoized run uses: the config's
// explicit store, else the substrate's (engine) store, else a fresh
// private store living only for this run (returned as owned for the
// caller to close). Private stores inherit the config's fault plan so
// -memo solo runs exercise the same injection sites as shared stores.
func (c Config) memoStoreFor(sub runSubstrate) (st *MemoStore, owned bool, err error) {
	if c.MemoStore != nil {
		return c.MemoStore, false, nil
	}
	if sub.memo != nil {
		return sub.memo, false, nil
	}
	st, err = NewMemoStore(MemoConfig{
		Clock:  sub.clk,
		Budget: c.MemoBudget,
		Faults: c.Faults,
	})
	if err != nil {
		return nil, false, err
	}
	return st, true, nil
}

// validateMemo rejects configurations the memo path cannot serve.
func (c Config) validateMemo() error {
	if !c.Memo {
		return nil
	}
	if c.Runtime != RuntimeSupMR {
		return errors.New("supmr: Memo requires RuntimeSupMR (the traditional runtime ingests the whole input as one chunk, leaving nothing to memoize)")
	}
	if c.ChunkBytes <= 0 {
		return errors.New("supmr: Memo requires ChunkBytes > 0 (content-defined chunk sizes derive from it)")
	}
	if c.AdaptiveChunks {
		return errors.New("supmr: Memo is incompatible with AdaptiveChunks (retuned chunk sizes would shift content-defined boundaries and defeat the cache)")
	}
	if c.ResetEachRound {
		return errors.New("supmr: Memo is incompatible with ResetEachRound (the memo path drains the container after every chunk)")
	}
	return nil
}

// wouldSpill reports whether the run would build the spill path —
// false in memo mode, whose per-chunk drains bound container residency
// without a spiller.
func (c Config) wouldSpill(budget int64) bool {
	return budget > 0 && !c.Memo
}
