package supmr

// Chaos harness for the fault-injection layer: sweep seeds x fault
// plans x runtimes and assert the safety invariant everywhere — a
// faulted run either produces output byte-identical to the fault-free
// run (transient faults absorbed by retries) or fails with an error
// wrapping ErrInjectedFault, with no goroutine leak either way. Each
// faulted configuration runs twice with fresh injectors to prove the
// schedule is deterministic: same seed + plan => same outcome.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"supmr/internal/storage"
)

// renderWC renders word-count output for byte-exact comparison.
func renderWC(pairs []Pair[string, int64]) string {
	var b strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&b, "%s=%d\n", p.Key, p.Val)
	}
	return b.String()
}

// chaosVariant is one runtime configuration under test.
type chaosVariant struct {
	name    string
	budget  int64 // spill budget (0 = unbudgeted)
	runtime Runtime
}

var chaosVariants = []chaosVariant{
	{name: "supmr", runtime: RuntimeSupMR},
	{name: "supmr-spill", runtime: RuntimeSupMR, budget: 48 << 10},
	{name: "traditional", runtime: RuntimeTraditional},
}

// chaosPlan builds the swept fault plans for one seed.
func chaosPlans(seed int64) map[string]FaultPlan {
	return map[string]FaultPlan{
		"transient-every": {Seed: seed, ReadErrEvery: 5},
		"mixed": {
			Seed:          seed,
			ReadErrProb:   0.08,
			WriteErrProb:  0.25,
			ShortReadProb: 0.2,
			Latency:       200 * time.Microsecond,
			LatencyProb:   0.1,
		},
		"permanent": {Seed: seed, ReadErrEvery: 4, Permanent: true},
	}
}

// runChaosWC executes one word-count configuration on a fresh virtual
// clock, returning the rendered output ("" on failure) and the error.
func runChaosWC(text []byte, v chaosVariant, inj *FaultInjector, retry RetryPolicy, clk Clock) (string, error) {
	cfg := Config{
		Runtime:    v.runtime,
		Workers:    4,
		ChunkBytes: 24 << 10,
		Clock:      clk,
		Faults:     inj,
		Retry:      retry,
	}
	if v.budget > 0 {
		cfg.MemoryBudget = v.budget
		cfg.SpillDevice = NewFastDevice(clk)
	}
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), applyIngestEnv(cfg))
	if err != nil {
		return "", err
	}
	return renderWC(rep.Pairs), nil
}

// outcome flattens a run's result for determinism comparison.
func outcome(out string, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return "ok: " + out
}

func TestChaosWordCount(t *testing.T) {
	text := genText(t, 192<<10, 11)
	baseGoroutines := runtime.NumGoroutine()
	retry := RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}

	// Fault-free baselines, one per variant.
	baseline := make(map[string]string)
	for _, v := range chaosVariants {
		out, err := runChaosWC(text, v, nil, RetryPolicy{}, storage.NewFakeClock())
		if err != nil {
			t.Fatalf("%s: fault-free run failed: %v", v.name, err)
		}
		if out == "" {
			t.Fatalf("%s: fault-free run produced no output", v.name)
		}
		baseline[v.name] = out
	}

	recovered, failed := 0, 0
	for _, seed := range []int64{1, 7, 42} {
		for planName, plan := range chaosPlans(seed) {
			for _, v := range chaosVariants {
				name := fmt.Sprintf("seed%d/%s/%s", seed, planName, v.name)
				t.Run(name, func(t *testing.T) {
					run := func() (string, error) {
						// Fresh clock and injector per run: determinism must come
						// from the plan, not shared state.
						clk := storage.NewFakeClock()
						return runChaosWC(text, v, NewFaultInjector(plan, clk), retry, clk)
					}
					out1, err1 := run()
					out2, err2 := run()
					if o1, o2 := outcome(out1, err1), outcome(out2, err2); o1 != o2 {
						t.Fatalf("nondeterministic outcome:\n  first:  %.200s\n  second: %.200s", o1, o2)
					}
					if err1 != nil {
						failed++
						if !errors.Is(err1, ErrInjectedFault) {
							t.Fatalf("faulted run failed with a non-injected error: %v", err1)
						}
						return
					}
					recovered++
					if out1 != baseline[v.name] {
						t.Fatalf("faulted run succeeded with output differing from the fault-free run (%d vs %d bytes)",
							len(out1), len(baseline[v.name]))
					}
				})
			}
		}
	}
	if recovered == 0 {
		t.Error("no faulted configuration recovered to baseline output; the sweep is not exercising the retry path")
	}
	if failed == 0 {
		t.Error("no faulted configuration failed; the sweep is not exercising the error path")
	}
	checkNoGoroutineLeak(t, baseGoroutines)
}

// TestChaosDeterministicCounters pins down the stronger reproducibility
// claim: same seed + plan => the same fault sequence, observable as
// identical injection counters, not merely the same outcome.
func TestChaosDeterministicCounters(t *testing.T) {
	text := genText(t, 96<<10, 5)
	plan := FaultPlan{Seed: 9, ReadErrEvery: 3, ShortReadProb: 0.3, LatencyProb: 0.2, Latency: 50 * time.Microsecond}
	retry := RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Microsecond}
	run := func() (FaultStats, string, error) {
		clk := storage.NewFakeClock()
		inj := NewFaultInjector(plan, clk)
		out, err := runChaosWC(text, chaosVariants[0], inj, retry, clk)
		return inj.Counters().Snapshot(), out, err
	}
	s1, out1, err1 := run()
	s2, out2, err2 := run()
	if outcome(out1, err1) != outcome(out2, err2) {
		t.Fatalf("outcomes differ: %v vs %v", err1, err2)
	}
	if s1 != s2 {
		t.Fatalf("fault counters differ across identical runs:\n  first:  %s\n  second: %s", s1.String(), s2.String())
	}
	if !s1.Any() {
		t.Fatal("plan injected nothing; the determinism check is vacuous")
	}
}

// TestChaosHDFS drives the fault plan through the HDFS substrate: the
// injector is attached to the cluster only (HDFSConfig.Faults), so the
// datanode disks are the fault sites, block fetches fail first-class,
// and ingest-level retries absorb the transient ones.
func TestChaosHDFS(t *testing.T) {
	const size = 192 << 10
	baseGoroutines := runtime.NumGoroutine()
	runHDFS := func(inj *FaultInjector, retry RetryPolicy) (string, FaultStats, error) {
		clk := storage.NewFakeClock()
		cluster, err := NewHDFS(HDFSConfig{
			Nodes:     4,
			BlockSize: 32 << 10,
			DiskBW:    400e6,
			LinkBW:    GigabitLinkBW,
			Faults:    inj,
		}, clk)
		if err != nil {
			return "", FaultStats{}, err
		}
		f, err := cluster.Create("chaos.txt", size, TextFill(11))
		if err != nil {
			return "", FaultStats{}, err
		}
		cfg := Config{
			Runtime:    RuntimeSupMR,
			Workers:    4,
			ChunkBytes: 24 << 10,
			Clock:      clk,
			Retry:      retry,
		}
		rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(16), applyIngestEnv(cfg))
		stats := inj.Counters().Snapshot()
		if err != nil {
			return "", stats, err
		}
		return renderWC(rep.Pairs), stats, nil
	}

	base, _, err := runHDFS(NewFaultInjector(FaultPlan{}, nil), RetryPolicy{})
	if err != nil {
		t.Fatalf("fault-free HDFS run failed: %v", err)
	}
	retry := RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}

	t.Run("transient-recovers", func(t *testing.T) {
		plan := FaultPlan{Seed: 3, ReadErrEvery: 3, Latency: 100 * time.Microsecond, LatencyEvery: 4}
		run := func() (string, FaultStats, error) {
			clk := storage.NewFakeClock()
			return runHDFS(NewFaultInjector(plan, clk), retry)
		}
		out1, stats1, err1 := run()
		out2, stats2, err2 := run()
		if outcome(out1, err1) != outcome(out2, err2) || stats1 != stats2 {
			t.Fatalf("nondeterministic HDFS outcome: %v (%s) vs %v (%s)", err1, stats1.String(), err2, stats2.String())
		}
		if err1 != nil {
			t.Fatalf("transient plan with retries failed: %v", err1)
		}
		if stats1.Injected == 0 {
			t.Fatal("plan injected nothing into the datanode disks; the recovery check is vacuous")
		}
		if out1 != base {
			t.Fatal("faulted HDFS output differs from fault-free baseline")
		}
	})

	t.Run("permanent-fails", func(t *testing.T) {
		plan := FaultPlan{Seed: 3, ReadErrEvery: 3, Permanent: true}
		clk := storage.NewFakeClock()
		_, _, err := runHDFS(NewFaultInjector(plan, clk), retry)
		if err == nil {
			t.Fatal("permanent plan succeeded")
		}
		if !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("error does not wrap ErrInjectedFault: %v", err)
		}
		if !strings.Contains(err.Error(), "hdfs:") {
			t.Fatalf("error does not attribute the failing block fetch: %v", err)
		}
	})
	checkNoGoroutineLeak(t, baseGoroutines)
}

// checkNoGoroutineLeak polls for the goroutine count to settle back to
// near the baseline; a faulted run must not leave workers behind.
func checkNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	const slack = 4 // test runner internals fluctuate a little
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
