package supmr

// Ablation coverage for the radix/columnar sort path: -radixsort=off
// must be byte-identical to the default fast path for every
// fixed-width-key app, under both runtimes, with injected faults, and
// under a spill budget — the gate ci.sh re-runs under the race
// detector.

import (
	"fmt"
	"testing"
	"time"

	"supmr/internal/storage"
	"supmr/internal/workload"
)

// radixRun executes job over data with the radix path on or off and
// returns the rendered output plus the report.
func radixRun[K comparable, V any](t *testing.T, job Job[K, V], mkCont func() Container[K, V],
	data []byte, cfg Config, radixOn bool) (string, *Report[K, V]) {
	t.Helper()
	cfg = applyIngestEnv(cfg)
	cfg.Workers = 4
	if !radixOn {
		off := false
		cfg.RadixSort = &off
	}
	rep, err := RunBytes(job, data, mkCont(), cfg)
	if err != nil {
		t.Fatalf("radix=%v: %v", radixOn, err)
	}
	return renderPairs(rep.Pairs), rep
}

func teraData(records int, seed uint64) []byte {
	data := make([]byte, records*workload.TeraRecordSize)
	workload.TeraGen{Seed: seed}.Fill()(0, data)
	return data
}

func TestRadixAblationDigests(t *testing.T) {
	text := genText(t, 128<<10, 5)
	// 8000 records over 64 key-range partitions gives ~125 pairs per
	// run, comfortably past the radix cutover so the counter assertions
	// are non-vacuous.
	tera := teraData(8000, 5)
	for _, rt := range []Runtime{RuntimeTraditional, RuntimeSupMR} {
		rt := rt
		name := "traditional"
		if rt == RuntimeSupMR {
			name = "supmr"
		}
		cfg := Config{Runtime: rt, ChunkBytes: 16 << 10}

		t.Run(name+"/sort", func(t *testing.T) {
			sortCfg := cfg
			sortCfg.Boundary = CRLFRecords
			sortCfg.ChunkBytes = 20 << 10
			on, onRep := radixRun[string, uint64](t, SortJob(),
				func() Container[string, uint64] { return SortContainer() }, tera, sortCfg, true)
			off, offRep := radixRun[string, uint64](t, SortJob(),
				func() Container[string, uint64] { return SortContainer() }, tera, sortCfg, false)
			if on != off {
				t.Fatalf("sort digests diverge: %d vs %d bytes", len(on), len(off))
			}
			if onRep.Stats.RadixRuns == 0 {
				t.Error("radix-on sort reported no radix-sorted runs")
			}
			if offRep.Stats.RadixRuns != 0 {
				t.Errorf("radix-off sort reported %d radix runs", offRep.Stats.RadixRuns)
			}
		})
		t.Run(name+"/histogram", func(t *testing.T) {
			job := HistogramJob()
			on, _ := radixRun[int, int64](t, job,
				func() Container[int, int64] { return job.NewContainer(8) }, text, cfg, true)
			off, _ := radixRun[int, int64](t, job,
				func() Container[int, int64] { return job.NewContainer(8) }, text, cfg, false)
			if on != off {
				t.Fatal("histogram digests diverge")
			}
		})
		t.Run(name+"/linreg", func(t *testing.T) {
			job := LinearRegressionJob()
			lrCfg := cfg
			lrCfg.Boundary = FixedRecords(2)
			on, _ := radixRun[int, float64](t, job,
				func() Container[int, float64] { return job.NewContainer() }, text, lrCfg, true)
			off, _ := radixRun[int, float64](t, job,
				func() Container[int, float64] { return job.NewContainer() }, text, lrCfg, false)
			if on != off {
				t.Fatal("linreg digests diverge")
			}
		})
		t.Run(name+"/wordcount-control", func(t *testing.T) {
			// No fixed-key codec: the toggle must be a no-op and the
			// counter must stay zero either way.
			on, onRep := radixRun[string, int64](t, WordCountJob(),
				func() Container[string, int64] { return WordCountContainer(16) }, text, cfg, true)
			off, _ := radixRun[string, int64](t, WordCountJob(),
				func() Container[string, int64] { return WordCountContainer(16) }, text, cfg, false)
			if on != off {
				t.Fatal("wordcount digests diverge")
			}
			if onRep.Stats.RadixRuns != 0 {
				t.Errorf("wordcount reported %d radix runs without a codec", onRep.Stats.RadixRuns)
			}
		})
	}
}

// TestRadixAblationFaultedAndBudgeted covers the hard corners: the
// retry path re-reads chunks, and the budget path routes runs through
// the spill drain plus the streaming external merge — radix on/off
// must stay byte-identical through both.
func TestRadixAblationFaultedAndBudgeted(t *testing.T) {
	tera := teraData(8000, 9)
	retry := RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}

	run := func(radixOn bool, faulted bool, budget int64) (string, *Report[string, uint64]) {
		t.Helper()
		clk := storage.NewFakeClock()
		cfg := Config{
			Runtime: RuntimeSupMR, ChunkBytes: 64 << 10,
			Boundary: CRLFRecords, Clock: clk,
		}
		if faulted {
			cfg.Faults = NewFaultInjector(FaultPlan{Seed: 3, ReadErrEvery: 5}, clk)
			cfg.Retry = retry
		}
		if budget > 0 {
			cfg.MemoryBudget = budget
			cfg.SpillDevice = NewFastDevice(clk)
		}
		return radixRun[string, uint64](t, SortJob(),
			func() Container[string, uint64] { return SortContainer() }, tera, cfg, radixOn)
	}

	for _, c := range []struct {
		name    string
		faulted bool
		budget  int64
	}{
		{"faulted", true, 0},
		{"budgeted", false, 256 << 10},
		{"faulted-budgeted", true, 256 << 10},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			on, onRep := run(true, c.faulted, c.budget)
			off, _ := run(false, c.faulted, c.budget)
			if on != off {
				t.Fatalf("%s digests diverge", c.name)
			}
			if c.budget > 0 {
				if onRep.Stats.SpilledRuns == 0 {
					t.Fatal("budgeted run did not spill; the external-merge comparison is vacuous")
				}
				if onRep.Stats.RadixRuns == 0 {
					t.Error("budgeted radix-on run radix-sorted no spill drains")
				}
			}
		})
	}
}

// TestRadixAblationMergeAlgos pins both in-memory merge algorithms to
// the same bytes with the toggle in either position (the columnar tree
// only engages under pway; pairwise keeps the comparison merge but
// shares the radix run sort).
func TestRadixAblationMergeAlgos(t *testing.T) {
	tera := teraData(1500, 13)
	var outs []string
	for _, algo := range []MergeAlgo{MergePairwise, MergePWay} {
		for _, radixOn := range []bool{true, false} {
			m := algo
			cfg := Config{Runtime: RuntimeSupMR, ChunkBytes: 20 << 10, Boundary: CRLFRecords, Merge: &m}
			out, _ := radixRun[string, uint64](t, SortJob(),
				func() Container[string, uint64] { return SortContainer() }, tera, cfg, radixOn)
			outs = append(outs, fmt.Sprintf("%v/%v:", algo, radixOn)+out)
		}
	}
	base := outs[0][len("pairwise/true:"):]
	for _, o := range outs[1:] {
		body := o[len(o)-len(base):]
		if body != base {
			t.Fatalf("merge-algo/radix combination diverges: %s", o[:20])
		}
	}
}
