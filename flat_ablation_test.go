package supmr

// The -flatcombiner ablation contract: the flat combining container and
// the bytes fast path are pure hot-path optimizations, so a SupMR run
// with them produces byte-identical output to the map-backed combiner
// over the same input. Multi-chunk runs exercise persistent pooled
// locals across rounds.

import (
	"testing"

	"supmr/internal/workload"
)

func ablationText(t *testing.T, size int) []byte {
	t.Helper()
	text := make([]byte, size)
	workload.TextGen{Seed: 11}.Fill()(0, text)
	return text
}

func samePairs[V comparable](t *testing.T, label string, flat, mapped []Pair[string, V]) {
	t.Helper()
	if len(flat) != len(mapped) {
		t.Fatalf("%s: flat produced %d pairs, map %d", label, len(flat), len(mapped))
	}
	for i := range flat {
		if flat[i].Key != mapped[i].Key || flat[i].Val != mapped[i].Val {
			t.Fatalf("%s: pair %d differs: flat %+v, map %+v", label, i, flat[i], mapped[i])
		}
	}
}

func TestFlatCombinerAblationWordCount(t *testing.T) {
	text := ablationText(t, 256<<10)
	cfg := Config{Runtime: RuntimeSupMR, ChunkBytes: 32 << 10}
	flat, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := RunBytes[string, int64](WordCountJob(), text, WordCountMapContainer(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Pairs) == 0 {
		t.Fatal("no output")
	}
	samePairs(t, "wordcount", flat.Pairs, mapped.Pairs)
	if flat.Stats.MapWaves < 2 {
		t.Fatalf("want a multi-chunk run, got %d waves", flat.Stats.MapWaves)
	}
}

func TestFlatCombinerAblationGrep(t *testing.T) {
	text := ablationText(t, 256<<10)
	job := GrepJob("ba", "zo", "pattern-found-nowhere")
	cfg := Config{Runtime: RuntimeSupMR, ChunkBytes: 32 << 10}
	flat, err := RunBytes[string, int64](job, text, job.NewContainer(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := RunBytes[string, int64](job, text, job.NewMapContainer(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Pairs) == 0 {
		t.Fatal("no matches")
	}
	samePairs(t, "grep", flat.Pairs, mapped.Pairs)
}

// Inverted index has no flat path (it retains values, no combiner); the
// allocation-disciplined seen-map in its Map must not change output.
// Two identical runs must agree exactly.
func TestInvertedIndexDeterministicOutput(t *testing.T) {
	text := ablationText(t, 64<<10)
	cfg := Config{Runtime: RuntimeSupMR, ChunkBytes: 16 << 10}
	run := func() []Pair[string, []string] {
		job := InvertedIndexJob()
		rep, err := RunBytes[string, []string](job, text, job.NewContainer(16), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Pairs
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no output")
	}
	if len(a) != len(b) {
		t.Fatalf("runs disagree on size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || len(a[i].Val) != len(b[i].Val) {
			t.Fatalf("pair %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Val {
			if a[i].Val[j] != b[i].Val[j] {
				t.Fatalf("pair %d posting %d differs: %q vs %q", i, j, a[i].Val[j], b[i].Val[j])
			}
		}
	}
}

// The report's allocation metering must attribute work to the phases
// that ran: a SupMR word count allocates in read+map and reduce.
func TestReportAllocsPopulated(t *testing.T) {
	text := ablationText(t, 64<<10)
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(64),
		Config{Runtime: RuntimeSupMR, ChunkBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Allocs.Get(PhaseReadMap); got.Objects <= 0 {
		t.Errorf("read+map alloc objects = %d, want > 0", got.Objects)
	}
	if rep.Allocs.String() == "" {
		t.Error("Allocs.String() empty for a real run")
	}
}
