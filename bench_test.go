package supmr

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VI), plus ablation benches for the design decisions
// DESIGN.md calls out. Table/figure benches execute the real runtimes on
// scaled inputs over the simulated storage; the perfmodel benches
// regenerate the paper-scale numbers. Expected shapes:
//
//	Table II word count: SupMR(chunked) < baseline; small chunks <= large.
//	Table II sort:       p-way merge < pairwise merge; totals follow.
//	Fig 7:               pipelined HDFS ingest <= copy-then-compute.
//	Ablations:           persistent container, chunk-size sweep,
//	                     container choice, merge crossover.

import (
	"fmt"
	"testing"
	"time"

	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/perfmodel"
	"supmr/internal/sortalgo"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

// benchWordCount runs one word count configuration per iteration.
func benchWordCount(b *testing.B, rt Runtime, size, chunkBytes int64, bw float64) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := NewClock()
		dev, err := NewDisk("sim", bw, 0, clock)
		if err != nil {
			b.Fatal(err)
		}
		f, err := TextFile("wc", size, 7, dev)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(64),
			Config{Runtime: rt, ChunkBytes: chunkBytes, Clock: clock})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Pairs) == 0 {
			b.Fatal("no output")
		}
		b.ReportMetric(rep.Times.Total.Seconds(), "job-s")
	}
	b.SetBytes(size)
}

// Table II word count rows (E-T2-WC). Input and bandwidth are scaled so
// read:map ≈ the paper's 6:1.
const (
	wcBenchSize = 2 << 20
	wcBenchBW   = 8 << 20
)

func BenchmarkTable2WordCountNone(b *testing.B) {
	benchWordCount(b, RuntimeTraditional, wcBenchSize, 0, wcBenchBW)
}

func BenchmarkTable2WordCountChunkSmall(b *testing.B) {
	benchWordCount(b, RuntimeSupMR, wcBenchSize, wcBenchSize/32, wcBenchBW)
}

func BenchmarkTable2WordCountChunkLarge(b *testing.B) {
	benchWordCount(b, RuntimeSupMR, wcBenchSize, wcBenchSize/3, wcBenchBW)
}

// benchSort runs one sort configuration per iteration.
func benchSort(b *testing.B, rt Runtime, records, chunkBytes int64, merge MergeAlgo, bw float64) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := NewClock()
		dev, err := NewDisk("sim", bw, 0, clock)
		if err != nil {
			b.Fatal(err)
		}
		f, err := TeraFile("sort", records, 7, dev)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := RunFile[string, uint64](SortJob(), f, SortContainer(),
			Config{Runtime: rt, ChunkBytes: chunkBytes, Boundary: CRLFRecords,
				Merge: &merge, Splits: 64, Clock: clock})
		if err != nil {
			b.Fatal(err)
		}
		if int64(len(rep.Pairs)) != records {
			b.Fatalf("sorted %d of %d records", len(rep.Pairs), records)
		}
		b.ReportMetric(rep.Times.Get(PhaseMerge).Seconds(), "merge-s")
	}
	b.SetBytes(records * workload.TeraRecordSize)
}

// Table II sort rows (E-T2-SORT).
const (
	sortBenchRecords = 40_000
	sortBenchBW      = 64 << 20
)

func BenchmarkTable2SortNone(b *testing.B) {
	benchSort(b, RuntimeTraditional, sortBenchRecords, 0, MergePairwise, sortBenchBW)
}

func BenchmarkTable2SortChunked(b *testing.B) {
	benchSort(b, RuntimeSupMR, sortBenchRecords, sortBenchRecords*100/10, MergePWay, sortBenchBW)
}

// Fig. 1 (E-F1): baseline sort with live utilization recording.
func BenchmarkFig1BaselineSortTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := NewClock()
		dev, err := NewDisk("sim", 32<<20, 0, clock)
		if err != nil {
			b.Fatal(err)
		}
		f, err := TeraFile("sort", 30_000, 7, dev)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := RunFile[string, uint64](SortJob(), f, SortContainer(),
			Config{Runtime: RuntimeTraditional, Boundary: CRLFRecords,
				Splits: 64, Clock: clock,
				TraceContexts: 4, TraceBucket: 20 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Trace == nil || len(rep.Trace.Samples) == 0 {
			b.Fatal("no trace")
		}
	}
}

// Fig. 3 (E-F3): the OpenMP-analog sort (sequential ingest + parse,
// parallel sort) against the MapReduce baseline.
func BenchmarkFig3OpenMPSort(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := NewClock()
		dev, err := NewDisk("sim", 32<<20, 0, clock)
		if err != nil {
			b.Fatal(err)
		}
		f, err := TeraFile("sort", 30_000, 7, dev)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := OpenMPSortFile(f, 4, clock)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Pairs) != 30_000 {
			b.Fatalf("sorted %d records", len(rep.Pairs))
		}
	}
}

// Fig. 5 (E-F5): the word count chunk-size utilization sweep.
func BenchmarkFig5WordCountTraces(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		rt    Runtime
		chunk int64
	}{
		{"NoChunks", RuntimeTraditional, 0},
		{"SmallChunks", RuntimeSupMR, wcBenchSize / 32},
		{"LargeChunks", RuntimeSupMR, wcBenchSize / 3},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clock := NewClock()
				dev, err := NewDisk("sim", wcBenchBW, 0, clock)
				if err != nil {
					b.Fatal(err)
				}
				f, err := TextFile("wc", wcBenchSize, 7, dev)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(64),
					Config{Runtime: cfg.rt, ChunkBytes: cfg.chunk, Clock: clock,
						TraceContexts: 4, TraceBucket: 20 * time.Millisecond})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Trace.MeanTotal(), "util-%")
			}
		})
	}
}

// Fig. 6 (E-F6): SupMR sort with the p-way merge, traced.
func BenchmarkFig6SupMRSortTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := NewClock()
		dev, err := NewDisk("sim", 32<<20, 0, clock)
		if err != nil {
			b.Fatal(err)
		}
		f, err := TeraFile("sort", 30_000, 7, dev)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := RunFile[string, uint64](SortJob(), f, SortContainer(),
			Config{Runtime: RuntimeSupMR, ChunkBytes: 500_000, Boundary: CRLFRecords,
				Splits: 64, Clock: clock,
				TraceContexts: 4, TraceBucket: 20 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.MergeRounds != 1 {
			b.Fatalf("p-way merge ran %d rounds, want 1", rep.Stats.MergeRounds)
		}
	}
}

// Fig. 7 (E-F7): HDFS case study — copy-then-compute vs pipelined.
func BenchmarkFig7HDFSCase(b *testing.B) {
	for _, mode := range []string{"CopyThenCompute", "Pipelined"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clock := NewClock()
				cluster, err := NewHDFS(HDFSConfig{
					Nodes: 32, BlockSize: 1 << 20, DiskBW: 64 << 20,
					LinkBW: 8 << 20, Latency: 200 * time.Microsecond,
				}, clock)
				if err != nil {
					b.Fatal(err)
				}
				hf, err := cluster.Create("in.txt", 4<<20, TextFill(7))
				if err != nil {
					b.Fatal(err)
				}
				if mode == "CopyThenCompute" {
					local, err := hf.CopyToLocal(NewFastDevice(clock), nil)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := RunFile[string, int64](WordCountJob(), local,
						WordCountContainer(64),
						Config{Runtime: RuntimeTraditional, Clock: clock}); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := RunFile[string, int64](WordCountJob(), hf,
						WordCountContainer(64),
						Config{Runtime: RuntimeSupMR, ChunkBytes: 1 << 20, Clock: clock}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// Paper-scale model benches: Table II and all figures in microseconds.
func BenchmarkModelTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := perfmodel.ModelTable2()
		if len(rows) != 5 {
			b.Fatal("expected 5 Table II rows")
		}
	}
}

func BenchmarkModelFigures(b *testing.B) {
	m := perfmodel.Testbed()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j := perfmodel.Baseline(perfmodel.Sort(), m, int64(perfmodel.SortInputBytes))
		tr := j.Trace(m, 2*time.Second)
		if len(tr.Samples) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// AblationMerge: pairwise vs p-way across run counts — the crossover
// (few runs: pairwise competitive; many runs: p-way avoids rescans).
func BenchmarkAblationMerge(b *testing.B) {
	for _, runs := range []int{4, 32, 256} {
		for _, algo := range []sortalgo.MergeAlgo{sortalgo.MergePairwise, sortalgo.MergePWay} {
			b.Run(fmt.Sprintf("%s/runs=%d", algo, runs), func(b *testing.B) {
				const total = 200_000
				less := kv.Less[uint64](func(a, c uint64) bool { return a < c })
				base := makeRuns(total, runs)
				ex := exec.NewLocal(4)
				defer ex.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					rs := make([][]kv.Pair[uint64, uint64], len(base))
					for j := range base {
						rs[j] = append([]kv.Pair[uint64, uint64](nil), base[j]...)
					}
					b.StartTimer()
					out, err := sortalgo.Merge(algo, rs, less, ex)
					if err != nil || len(out) != total {
						b.Fatalf("merged %d of %d (%v)", len(out), total, err)
					}
				}
			})
		}
	}
}

// makeRuns builds sorted runs of deterministic pseudo-random keys.
func makeRuns(total, runs int) [][]kv.Pair[uint64, uint64] {
	per := total / runs
	out := make([][]kv.Pair[uint64, uint64], runs)
	x := uint64(12345)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for r := range out {
		n := per
		if r == runs-1 {
			n = total - per*(runs-1)
		}
		run := make([]kv.Pair[uint64, uint64], n)
		for i := range run {
			run[i] = kv.Pair[uint64, uint64]{Key: next(), Val: uint64(i)}
		}
		kv.SortPairs(run, func(a, c uint64) bool { return a < c })
		out[r] = run
	}
	return out
}

// ExecutorSpawnVsPool: the tentpole's spawn-overhead claim, measured.
// A many-round SupMR wordcount drives one map wave per ingest chunk;
// the old path created (and tore down) a fresh set of worker goroutines
// every wave, the persistent pool pays worker startup once per job.
func BenchmarkExecutorSpawnVsPool(b *testing.B) {
	const size = 1 << 20
	const chunkSz = 8 << 10 // 128 waves per job
	text := make([]byte, size)
	workload.TextGen{Seed: 7}.Fill()(0, text)
	var chunks [][]byte
	for off := 0; off < len(text); off += chunkSz {
		end := off + chunkSz
		if end > len(text) {
			end = len(text)
		}
		chunks = append(chunks, text[off:end])
	}
	job := WordCountJob()
	run := func(b *testing.B, persistent bool) {
		b.ReportAllocs()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			cont := WordCountContainer(64)
			opts := mapreduce.Options{Workers: 4, Splits: 8}
			var pool *exec.Pool
			if persistent {
				pool = exec.NewLocal(4)
				opts.Pool = pool
			}
			for _, c := range chunks {
				if _, _, err := mapreduce.MapWaveTimed[string, int64](job, c, cont, opts); err != nil {
					b.Fatal(err)
				}
			}
			if pool != nil {
				pool.Close()
			}
		}
	}
	b.Run("SpawnPerWave", func(b *testing.B) { run(b, false) })
	b.Run("PersistentPool", func(b *testing.B) { run(b, true) })
}

// MapHotPath: the zero-allocation map path claim, measured. Each
// iteration is one steady-state map wave over 1 MiB of text against a
// persistent container (a warmup wave interns the vocabulary and warms
// the pooled locals first — the SupMR ingest-round shape, §III-C). The
// flat combiner (bytes fast path, arena-interned keys, pooled locals)
// should report orders of magnitude fewer allocs/op than the map-backed
// combiner and higher MB/s; ci.sh gates on the flat allocs/op figure.
func BenchmarkMapHotPath(b *testing.B) {
	const size = 1 << 20
	text := make([]byte, size)
	workload.TextGen{Seed: 7}.Fill()(0, text)
	job := WordCountJob()
	run := func(b *testing.B, cont Container[string, int64]) {
		pool := exec.NewLocal(4)
		defer pool.Close()
		opts := mapreduce.Options{Splits: 16, Pool: pool}
		wave := func() {
			if _, _, err := mapreduce.MapWaveTimed[string, int64](job, text, cont, opts); err != nil {
				b.Fatal(err)
			}
		}
		wave() // warmup: intern the vocabulary, warm pooled locals
		b.ReportAllocs()
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wave()
		}
		if cont.Len() == 0 {
			b.Fatal("empty container")
		}
	}
	b.Run("FlatCombiner", func(b *testing.B) { run(b, WordCountContainer(64)) })
	b.Run("MapCombiner", func(b *testing.B) { run(b, WordCountMapContainer(64)) })
}

// AblationChunkSize: the fine-vs-coarse granularity trade-off of
// Conclusion 2 at fixed input size and bandwidth.
func BenchmarkAblationChunkSize(b *testing.B) {
	const size = 2 << 20
	for _, chunk := range []int64{size / 64, size / 16, size / 4, size} {
		b.Run(fmt.Sprintf("chunk=%dKiB", chunk/1024), func(b *testing.B) {
			benchWordCount(b, RuntimeSupMR, size, chunk, 8<<20)
		})
	}
}

// AblationContainerChoice: sort on the unlocked key-range container vs
// the (wrong-for-sort) hash container, per §V-B.
func BenchmarkAblationContainerChoice(b *testing.B) {
	const records = 40_000
	data := make([]byte, records*workload.TeraRecordSize)
	workload.TeraGen{Seed: 7}.Fill()(0, data)
	run := func(b *testing.B, cont Container[string, uint64]) {
		rep, err := RunBytes[string, uint64](SortJob(), data, cont,
			Config{Boundary: CRLFRecords, Splits: 64})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Pairs) != records {
			b.Fatalf("sorted %d of %d", len(rep.Pairs), records)
		}
	}
	b.Run("KeyRange", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, SortContainer())
		}
	})
	b.Run("Hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, SortJob().NewHashContainer(64))
		}
	})
}

// AblationPersistentContainer: the §III-C requirement. Re-initializing
// per round is (a) wrong — output shrinks — and this bench quantifies
// the bookkeeping cost of keeping it persistent instead.
func BenchmarkAblationPersistentContainer(b *testing.B) {
	text := make([]byte, 1<<20)
	workload.TextGen{Seed: 7}.Fill()(0, text)
	for _, reset := range []bool{false, true} {
		name := "Persistent"
		if reset {
			name = "ResetEachRound"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := RunBytes[string, int64](WordCountJob(), text,
					WordCountContainer(64),
					Config{Runtime: RuntimeSupMR, ChunkBytes: 64 << 10, ResetEachRound: reset})
				if err != nil {
					b.Fatal(err)
				}
				var total int64
				for _, p := range rep.Pairs {
					total += p.Val
				}
				b.ReportMetric(float64(total), "occurrences")
			}
		})
	}
}

// AblationAdaptiveChunks: the §VIII future-work feedback loop vs fixed
// chunk sizes — adaptive starts badly sized and must converge.
func BenchmarkAblationAdaptiveChunks(b *testing.B) {
	const size = 2 << 20
	run := func(b *testing.B, adaptive bool, chunk int64) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clock := NewClock()
			dev, err := NewDisk("sim", 16<<20, 0, clock)
			if err != nil {
				b.Fatal(err)
			}
			f, err := TextFile("wc", size, 7, dev)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(64),
				Config{Runtime: RuntimeSupMR, ChunkBytes: chunk,
					AdaptiveChunks: adaptive, Clock: clock})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.Stats.MapWaves), "waves")
		}
	}
	b.Run("FixedTiny", func(b *testing.B) { run(b, false, 32<<10) })
	b.Run("AdaptiveFromTiny", func(b *testing.B) { run(b, true, 32<<10) })
	b.Run("FixedTuned", func(b *testing.B) { run(b, false, size/16) })
}

// AblationHybridChunking: intra-file vs hybrid chunking over a skewed
// file-size distribution (many small files plus one large one).
func BenchmarkAblationHybridChunking(b *testing.B) {
	mkFiles := func(clock Clock) []Input {
		dev := NewFastDevice(clock)
		files, err := TextFiles("doc", 16, 32<<10, 1, dev)
		if err != nil {
			b.Fatal(err)
		}
		big, err := TextFile("big", 1<<20, 9, dev)
		if err != nil {
			b.Fatal(err)
		}
		return append(files, big)
	}
	for _, mode := range []string{"IntraFile", "Hybrid"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clock := NewClock()
				rep, err := RunFiles[string, int64](WordCountJob(), mkFiles(clock),
					WordCountContainer(64), Config{
						Runtime:       RuntimeSupMR,
						FilesPerChunk: 4,
						HybridChunks:  mode == "Hybrid",
						ChunkBytes:    128 << 10,
						Clock:         clock,
					})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Stats.MapWaves), "waves")
			}
		})
	}
}

// AblationSpill: the memory-budget sweep for the out-of-core path. A
// calibration map wave measures the job's resident intermediate size,
// then the job runs unbudgeted, at 2x that size (fits, never spills)
// and at 0.5x (must spill roughly half the rounds' state). The spill
// machinery should be free when the budget fits, and the 0.5x row
// quantifies what the extra device writes plus the external merge cost.
func BenchmarkAblationSpill(b *testing.B) {
	const size = 2 << 20
	text := make([]byte, size)
	workload.TextGen{Seed: 7}.Fill()(0, text)
	cont := WordCountContainer(64)
	if _, err := mapreduce.MapWave[string, int64](WordCountJob(), text, cont, mapreduce.Options{Workers: 4}); err != nil {
		b.Fatal(err)
	}
	inter := cont.SizeBytes()
	for _, cfg := range []struct {
		name   string
		budget int64
	}{
		{"Unbudgeted", 0},
		{"Budget2x", 2 * inter},
		{"BudgetHalf", inter / 2},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(64),
					Config{Runtime: RuntimeSupMR, ChunkBytes: 64 << 10,
						MemoryBudget: cfg.budget})
				if err != nil {
					b.Fatal(err)
				}
				if cfg.budget >= inter && rep.Stats.SpilledRuns != 0 {
					b.Fatalf("budget %d >= intermediate %d yet spilled %d runs",
						cfg.budget, inter, rep.Stats.SpilledRuns)
				}
				b.ReportMetric(float64(rep.Stats.SpilledRuns), "spill-runs")
				b.ReportMetric(float64(rep.Stats.SpilledBytes), "spill-B")
				b.ReportMetric(float64(rep.Stats.MergeRounds), "merge-rounds")
			}
		})
	}
}

// IngestLanes: the striped multi-lane ingest sweep. Each member of a
// 3-disk RAID-0 caps a single request at a third of its bandwidth
// (StreamBandwidth — one stream cannot saturate a spindle), so a serial
// whole-chunk read leaves the array ~3x underdriven. Splitting every
// chunk into segments issued across k IO lanes keeps multiple requests
// in flight per member and recovers the aggregate rate; the virtual
// ReadMap seconds (FakeClock — device time only, map compute is free)
// measure exactly that. ci.sh gates Lanes4 at >= 1.5x the Lanes1
// throughput and bounds Lanes4 allocs/op: the prefetch ring recycles
// chunk buffers through the freelist, so steady-state ingest allocates
// O(depth) buffers, not O(chunks). The app is deliberately trivial —
// one emission per map split — so allocs/op measures the ingest
// machinery, not the application.
type ingestNop struct{}

func (ingestNop) Map(split []byte, emit kv.Emitter[string, int64]) {
	emit.Emit("bytes", int64(len(split)))
}
func (ingestNop) Reduce(key string, vals []int64) int64 {
	var t int64
	for _, v := range vals {
		t += v
	}
	return t
}
func (ingestNop) Less(a, b string) bool    { return a < b }
func (ingestNop) Combine(a, b int64) int64 { return a + b }

func BenchmarkIngestLanes(b *testing.B) {
	const (
		ingestSize  = 4 << 20
		ingestChunk = 512 << 10
		memberBW    = 128 << 20
	)
	run := func(b *testing.B, lanes, depth int) {
		b.ReportAllocs()
		b.SetBytes(ingestSize)
		for i := 0; i < b.N; i++ {
			clk := storage.NewFakeClock()
			members := make([]*storage.Disk, 3)
			for j := range members {
				d, err := storage.NewDisk(storage.DiskConfig{
					Name:            fmt.Sprintf("m%d", j),
					Bandwidth:       memberBW,
					StreamBandwidth: memberBW / 3,
				}, clk)
				if err != nil {
					b.Fatal(err)
				}
				members[j] = d
			}
			raid, err := storage.NewRAID0(members, 64<<10)
			if err != nil {
				b.Fatal(err)
			}
			// Zero-allocation fill (64-byte 'a' records): the text
			// generator allocates per word, which would drown the
			// ingest machinery's allocation figure this bench gates.
			f, err := storage.NewFile("in", ingestSize, 0, func(off int64, p []byte) {
				for i := range p {
					if (off+int64(i))%64 == 63 {
						p[i] = '\n'
					} else {
						p[i] = 'a'
					}
				}
			}, raid)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := RunFile[string, int64](ingestNop{}, f, WordCountContainer(4),
				Config{Runtime: RuntimeSupMR, ChunkBytes: ingestChunk, Clock: clk,
					IOLanes: lanes, PrefetchDepth: depth})
			if err != nil {
				b.Fatal(err)
			}
			var total int64
			for _, p := range rep.Pairs {
				total += p.Val
			}
			if total != ingestSize {
				b.Fatalf("mapped %d of %d bytes", total, ingestSize)
			}
			b.ReportMetric(rep.Times.Get(PhaseReadMap).Seconds(), "sim-ingest-s")
		}
	}
	b.Run("Lanes1", func(b *testing.B) { run(b, 1, 1) })
	b.Run("Lanes2", func(b *testing.B) { run(b, 2, 3) })
	b.Run("Lanes4", func(b *testing.B) { run(b, 4, 3) })
}

// AblationEnergy: the §VI-C utilization/energy trade-off — small chunks
// raise mean utilization (and power) while cutting wall-clock time.
func BenchmarkAblationEnergy(b *testing.B) {
	const size = 2 << 20
	for _, cfg := range []struct {
		name  string
		chunk int64
	}{
		{"SmallChunks", size / 32},
		{"LargeChunks", size / 2},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clock := NewClock()
				dev, err := NewDisk("sim", 8<<20, 0, clock)
				if err != nil {
					b.Fatal(err)
				}
				f, err := TextFile("wc", size, 7, dev)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(64),
					Config{Runtime: RuntimeSupMR, ChunkBytes: cfg.chunk, Clock: clock,
						TraceContexts: 4, TraceBucket: 20 * time.Millisecond})
				if err != nil {
					b.Fatal(err)
				}
				e := Energy(rep.Trace, 4)
				b.ReportMetric(e.AvgWatts, "avg-W")
				b.ReportMetric(e.Joules, "J")
			}
		})
	}
}
