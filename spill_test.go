package supmr

import (
	"reflect"
	"testing"

	"supmr/internal/kv"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

// Spill integration tests: the memory-budgeted out-of-core path through
// the public facade. The invariant under test everywhere is that
// spilling is purely a memory/scheduling concern — budgeted output is
// identical to unbudgeted output.

// TestWordCountBudgetedMatchesUnbudgeted runs word count with a memory
// budget far below the intermediate set and checks the output is
// byte-identical to the unbudgeted run: spilling partial combiner state
// and re-reducing it across runs in the external merge must be
// invisible in the result.
func TestWordCountBudgetedMatchesUnbudgeted(t *testing.T) {
	text := genText(t, 128<<10, 11)
	run := func(budget int64) *Report[string, int64] {
		t.Helper()
		rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), Config{
			Runtime:      RuntimeSupMR,
			Workers:      4,
			ChunkBytes:   16 << 10,
			MemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	base := run(0)
	budgeted := run(8 << 10) // far below the intermediate set

	if budgeted.Stats.SpilledRuns < 1 {
		t.Fatalf("budgeted run spilled %d runs, want >= 1", budgeted.Stats.SpilledRuns)
	}
	if budgeted.Stats.SpilledBytes <= 0 {
		t.Error("budgeted run recorded no spilled bytes")
	}
	if budgeted.Stats.MergeRounds != 1 {
		t.Errorf("budgeted merge took %d rounds, want 1 (external merge is still single-round)", budgeted.Stats.MergeRounds)
	}
	if base.Stats.SpilledRuns != 0 {
		t.Errorf("unbudgeted run spilled %d runs", base.Stats.SpilledRuns)
	}
	if !reflect.DeepEqual(base.Pairs, budgeted.Pairs) {
		t.Fatalf("budgeted output differs from unbudgeted: %d vs %d pairs", len(budgeted.Pairs), len(base.Pairs))
	}
	// The series tracks cumulative bytes and ends at the total.
	if n := len(budgeted.SpillBytes); n != budgeted.Stats.SpilledRuns {
		t.Errorf("spill series has %d points, want one per run (%d)", n, budgeted.Stats.SpilledRuns)
	} else if last := budgeted.SpillBytes[n-1].V; last != budgeted.Stats.SpilledBytes {
		t.Errorf("spill series ends at %d, want %d", last, budgeted.Stats.SpilledBytes)
	}
}

// TestSortBudgetedMatchesUnbudgeted is the unique-key analog: sorted
// runs stream back through the loser tree with every group a singleton,
// so output must match the in-memory path record for record.
func TestSortBudgetedMatchesUnbudgeted(t *testing.T) {
	const records = 5000
	data := make([]byte, records*workload.TeraRecordSize)
	workload.TeraGen{Seed: 7}.Fill()(0, data)

	run := func(budget int64) *Report[string, uint64] {
		t.Helper()
		rep, err := RunBytes[string, uint64](SortJob(), data, SortContainer(), Config{
			Runtime:      RuntimeSupMR,
			Workers:      4,
			ChunkBytes:   64 << 10,
			Boundary:     CRLFRecords,
			MemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	base := run(0)
	budgeted := run(32 << 10)

	if budgeted.Stats.SpilledRuns < 1 {
		t.Fatalf("budgeted sort spilled %d runs, want >= 1", budgeted.Stats.SpilledRuns)
	}
	if budgeted.Stats.MergeRounds != 1 {
		t.Errorf("budgeted sort merge took %d rounds, want 1", budgeted.Stats.MergeRounds)
	}
	less := kv.Less[string](func(a, b string) bool { return a < b })
	if !kv.IsSortedPairs(budgeted.Pairs, less) {
		t.Error("budgeted sort output not sorted")
	}
	if !reflect.DeepEqual(base.Pairs, budgeted.Pairs) {
		t.Fatalf("budgeted sort output differs from unbudgeted: %d vs %d pairs", len(budgeted.Pairs), len(base.Pairs))
	}
}

// TestSpillChargesDeviceAndIOLane points the spill at a simulated disk
// and checks the writes are bandwidth-accounted on it, executed under
// the "spill" task label (the IO lane shows them as IO-wait), and
// timed in the spill phase.
func TestSpillChargesDeviceAndIOLane(t *testing.T) {
	text := genText(t, 128<<10, 13)
	clk := storage.NewFakeClock()
	ingest := storage.NewNullDevice(clk)
	spillDisk, err := storage.NewDisk(storage.DiskConfig{Name: "spill", Bandwidth: 4 << 20}, clk)
	if err != nil {
		t.Fatal(err)
	}
	f := storage.BytesFile("in", text, ingest)
	rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(16), Config{
		Runtime:      RuntimeSupMR,
		Workers:      4,
		ChunkBytes:   16 << 10,
		Clock:        clk,
		MemoryBudget: 8 << 10,
		SpillDevice:  spillDisk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.SpilledRuns < 1 {
		t.Fatalf("spilled %d runs, want >= 1", rep.Stats.SpilledRuns)
	}
	ds := spillDisk.Stats()
	if ds.BytesWritten != rep.Stats.SpilledBytes {
		t.Errorf("device BytesWritten = %d, want spilled bytes %d", ds.BytesWritten, rep.Stats.SpilledBytes)
	}
	// The external merge reads every spilled byte back.
	if ds.BytesRead != rep.Stats.SpilledBytes {
		t.Errorf("device BytesRead = %d, want spilled bytes %d (merge streams every run)", ds.BytesRead, rep.Stats.SpilledBytes)
	}
	spillTasks, ok := rep.Stats.Tasks["spill"]
	if !ok || spillTasks.Tasks == 0 {
		t.Fatalf("no tasks recorded under the spill label: %+v", rep.Stats.Tasks)
	}
	if spillTasks.Busy <= 0 {
		t.Error("spill tasks recorded no busy time")
	}
	// Each run write sleeps on the simulated device, so the series
	// timestamps show simulated time passing as spill bytes accumulate.
	if n := len(rep.SpillBytes); n == 0 {
		t.Error("no spill series points")
	} else if rep.SpillBytes[n-1].T <= 0 {
		t.Errorf("spill series recorded no simulated time: %v", rep.SpillBytes[n-1].T)
	}
}

// TestBudgetConfigValidation covers the facade-level budget rules.
func TestBudgetConfigValidation(t *testing.T) {
	text := genText(t, 8<<10, 1)
	// Budget with the traditional runtime is refused.
	if _, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(4), Config{
		Runtime: RuntimeTraditional, MemoryBudget: 1 << 10,
	}); err == nil {
		t.Error("MemoryBudget with RuntimeTraditional accepted")
	}
	// Budget with the fixed-footprint array container is refused.
	job := HistogramJob()
	data := make([]byte, 8<<10)
	if _, err := RunBytes[int, int64](job, data, job.NewContainer(4), Config{
		Runtime: RuntimeSupMR, ChunkBytes: 2 << 10, MemoryBudget: 1 << 10,
	}); err == nil {
		t.Error("MemoryBudget with the array container accepted")
	}
	// A budget larger than the job's intermediate set never spills and
	// still produces correct output.
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(4), Config{
		Runtime: RuntimeSupMR, ChunkBytes: 2 << 10, MemoryBudget: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.SpilledRuns != 0 {
		t.Errorf("oversized budget still spilled %d runs", rep.Stats.SpilledRuns)
	}
	checkWordCounts(t, rep.Pairs, refWordCount(text))
}
