package supmr

// Randomized differential testing across the two runtimes: for every
// application and every compatible container, the traditional runtime
// and the SupMR pipeline must produce byte-identical output over the
// same randomly generated input. The runtimes share only the app and
// container code, so agreement here pins down the pipeline's
// correctness (chunking, persistent container, p-way merge) against
// the straightforward ingest-everything baseline.
//
// Exclusions, by construction rather than by bug:
//   - kmeans: an iterative driver over many SupMR jobs, not one job.
//   - OpenMP sort: not a kv.App; it has its own comparison tests.
//   - invindex over RunFiles: the app attributes words to chunk file
//     names, and the two runtimes chunk multi-file input differently,
//     so only the single-buffer (RunBytes) case is comparable.

import (
	"fmt"
	"strings"
	"testing"

	"supmr/internal/workload"
)

// renderPairs flattens any output for byte-exact comparison.
func renderPairs[K comparable, V any](pairs []Pair[K, V]) string {
	var b strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&b, "%v=%v\n", p.Key, p.Val)
	}
	return b.String()
}

// diffRun executes the job under both runtimes over data and fails on
// any output difference. mkCont builds a fresh container per run.
func diffRun[K comparable, V any](t *testing.T, job Job[K, V], mkCont func() Container[K, V], data []byte, cfg Config) {
	t.Helper()
	cfg = applyIngestEnv(cfg)
	cfg.Workers = 4
	cfg.Runtime = RuntimeTraditional
	trad, err := RunBytes(job, data, mkCont(), cfg)
	if err != nil {
		t.Fatalf("traditional: %v", err)
	}
	cfg.Runtime = RuntimeSupMR
	sup, err := RunBytes(job, data, mkCont(), cfg)
	if err != nil {
		t.Fatalf("supmr: %v", err)
	}
	if sup.Stats.MapWaves < 2 {
		t.Fatalf("supmr ran %d map waves; the differential run must be multi-chunk", sup.Stats.MapWaves)
	}
	a, b := renderPairs(trad.Pairs), renderPairs(sup.Pairs)
	if a != b {
		t.Fatalf("outputs differ: traditional %d pairs/%d bytes, supmr %d pairs/%d bytes",
			len(trad.Pairs), len(a), len(sup.Pairs), len(b))
	}
	if len(trad.Pairs) == 0 {
		t.Fatal("no output; the comparison is vacuous")
	}
}

func TestDifferentialRuntimes(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		seed := seed
		text := genText(t, 128<<10, seed)
		cfg := Config{ChunkBytes: 16 << 10}

		t.Run(fmt.Sprintf("seed%d/wordcount-flat", seed), func(t *testing.T) {
			diffRun[string, int64](t, WordCountJob(),
				func() Container[string, int64] { return WordCountContainer(16) }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/wordcount-map", seed), func(t *testing.T) {
			diffRun[string, int64](t, WordCountJob(),
				func() Container[string, int64] { return WordCountMapContainer(16) }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/grep-flat", seed), func(t *testing.T) {
			job := GrepJob("ba", "zo", "nowhere-to-be-found")
			diffRun[string, int64](t, job,
				func() Container[string, int64] { return job.NewContainer() }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/grep-map", seed), func(t *testing.T) {
			job := GrepJob("ba", "zo")
			diffRun[string, int64](t, job,
				func() Container[string, int64] { return job.NewMapContainer() }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/histogram", seed), func(t *testing.T) {
			job := HistogramJob()
			diffRun[int, int64](t, job,
				func() Container[int, int64] { return job.NewContainer(8) }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/linreg", seed), func(t *testing.T) {
			job := LinearRegressionJob()
			lrCfg := cfg
			lrCfg.Boundary = FixedRecords(2)
			diffRun[int, float64](t, job,
				func() Container[int, float64] { return job.NewContainer() }, text, lrCfg)
		})
		t.Run(fmt.Sprintf("seed%d/invindex", seed), func(t *testing.T) {
			mk := func() Container[string, []string] { return InvertedIndexJob().NewContainer(16) }
			// Fresh job per run: the app carries per-run chunk attribution
			// state (set_data), so sharing one instance would leak file
			// names across runs.
			diffCfg := applyIngestEnv(cfg)
			diffCfg.Workers = 4
			diffCfg.Runtime = RuntimeTraditional
			trad, err := RunBytes[string, []string](InvertedIndexJob(), text, mk(), diffCfg)
			if err != nil {
				t.Fatalf("traditional: %v", err)
			}
			diffCfg.Runtime = RuntimeSupMR
			sup, err := RunBytes[string, []string](InvertedIndexJob(), text, mk(), diffCfg)
			if err != nil {
				t.Fatalf("supmr: %v", err)
			}
			if a, b := renderPairs(trad.Pairs), renderPairs(sup.Pairs); a != b {
				t.Fatalf("outputs differ: traditional %d pairs, supmr %d pairs", len(trad.Pairs), len(sup.Pairs))
			}
		})
		t.Run(fmt.Sprintf("seed%d/sort", seed), func(t *testing.T) {
			const records = 1200
			tera := make([]byte, records*100)
			workload.TeraGen{Seed: uint64(seed)}.Fill()(0, tera)
			job := SortJob()
			sortCfg := cfg
			sortCfg.Boundary = CRLFRecords
			sortCfg.ChunkBytes = 20 << 10
			diffRun[string, uint64](t, job,
				func() Container[string, uint64] { return SortContainer() }, tera, sortCfg)
		})
	}
}

// diffMultiNode runs the job single-node under the SupMR runtime, then
// across the full multi-node matrix — cluster size × in-node combiner ×
// radix ablation — and fails unless every cell's output is
// byte-identical to the single-node run. wantShuffle additionally
// demands that multi-node cells moved frames over the wire, so the
// matrix can't pass vacuously by never exercising the exchange.
func diffMultiNode[K comparable, V any](t *testing.T, job Job[K, V], mkCont func() Container[K, V], data []byte, cfg Config, wantShuffle bool) {
	t.Helper()
	cfg = applyIngestEnv(cfg)
	cfg.Workers = 4
	cfg.Runtime = RuntimeSupMR
	base, err := RunBytes(job, data, mkCont(), cfg)
	if err != nil {
		t.Fatalf("single-node baseline: %v", err)
	}
	if len(base.Pairs) == 0 {
		t.Fatal("no output; the comparison is vacuous")
	}
	want := renderPairs(base.Pairs)
	off := false
	for _, nodes := range []int{1, 2, 4} {
		for _, comb := range []bool{true, false} {
			for _, radix := range []bool{true, false} {
				label := fmt.Sprintf("nodes=%d combiner=%v radix=%v", nodes, comb, radix)
				c := cfg
				c.Nodes = nodes
				if !comb {
					c.InNodeCombiner = &off
				}
				if !radix {
					c.RadixSort = &off
				}
				rep, err := RunBytes(job, data, mkCont(), c)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if got := renderPairs(rep.Pairs); got != want {
					t.Fatalf("%s: output differs from single-node: %d pairs vs %d", label, len(rep.Pairs), len(base.Pairs))
				}
				if wantShuffle && nodes > 1 && rep.Stats.ShuffleFrames == 0 {
					t.Fatalf("%s: no frames crossed the wire; the multi-node run degenerated", label)
				}
				if nodes == 1 && rep.Stats.ShuffleBytes != 0 {
					t.Fatalf("%s: a one-node cluster moved %d wire bytes", label, rep.Stats.ShuffleBytes)
				}
			}
		}
	}
}

// TestDifferentialMultiNode is the scale-out differential suite: every
// codec-compatible application must produce byte-identical output on
// simulated clusters of 1, 2 and 4 nodes, with the in-node combiner on
// and off and the radix sort path on and off, compared against the
// standing single-node pipeline. Exclusions by construction: kmeans
// (iterative driver) and invindex ([]string values have no wire codec)
// — both are rejected, which TestMultiNodeRejections pins down.
func TestDifferentialMultiNode(t *testing.T) {
	text := genText(t, 128<<10, 29)
	cfg := Config{ChunkBytes: 16 << 10}

	t.Run("wordcount-flat", func(t *testing.T) {
		diffMultiNode[string, int64](t, WordCountJob(),
			func() Container[string, int64] { return WordCountContainer(16) }, text, cfg, true)
	})
	t.Run("wordcount-map", func(t *testing.T) {
		diffMultiNode[string, int64](t, WordCountJob(),
			func() Container[string, int64] { return WordCountMapContainer(16) }, text, cfg, true)
	})
	t.Run("grep", func(t *testing.T) {
		job := GrepJob("ba", "zo", "nowhere-to-be-found")
		// Only a couple of live keys, so whether any lands remote is up
		// to the hash — identity is the claim here, not wire traffic.
		diffMultiNode[string, int64](t, job,
			func() Container[string, int64] { return job.NewContainer() }, text, cfg, false)
	})
	t.Run("histogram", func(t *testing.T) {
		job := HistogramJob()
		diffMultiNode[int, int64](t, job,
			func() Container[int, int64] { return job.NewContainer(8) }, text, cfg, true)
	})
	t.Run("linreg", func(t *testing.T) {
		job := LinearRegressionJob()
		lrCfg := cfg
		lrCfg.Boundary = FixedRecords(2)
		diffMultiNode[int, float64](t, job,
			func() Container[int, float64] { return job.NewContainer() }, text, lrCfg, false)
	})
	t.Run("sort", func(t *testing.T) {
		const records = 1200
		tera := make([]byte, records*100)
		workload.TeraGen{Seed: 31}.Fill()(0, tera)
		job := SortJob()
		sortCfg := cfg
		sortCfg.Boundary = CRLFRecords
		sortCfg.ChunkBytes = 20 << 10
		diffMultiNode[string, uint64](t, job,
			func() Container[string, uint64] { return SortContainer() }, tera, sortCfg, true)
	})
}

// TestMultiNodeBudgetIgnored: a budgeted multi-node run stays
// byte-identical and surfaces the ignored budget as a note instead of
// silently changing meaning (per-chunk drains already bound residency).
func TestMultiNodeBudgetIgnored(t *testing.T) {
	text := genText(t, 64<<10, 41)
	cfg := applyIngestEnv(Config{Runtime: RuntimeSupMR, Workers: 4, ChunkBytes: 8 << 10})
	base, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 4
	cfg.MemoryBudget = 32 << 10
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderPairs(base.Pairs), renderPairs(rep.Pairs); a != b {
		t.Fatal("budgeted multi-node output differs from single-node")
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "MemoryBudget ignored") {
			found = true
		}
	}
	if !found {
		t.Fatalf("budgeted multi-node run did not note the ignored budget: %q", rep.Notes)
	}
	if rep.Stats.SpilledRuns != 0 {
		t.Fatalf("multi-node run spilled %d runs; the spill path must be bypassed", rep.Stats.SpilledRuns)
	}
}

// TestMultiNodeSkewedPartition: hash partitioning sends every
// occurrence of a key to one node, so a pathologically skewed key
// distribution — here >90% of all tokens are one word — lands almost
// the whole intermediate set on a single partition. The cluster must
// still produce byte-identical output, with the hot key counted once
// and the wire genuinely exercised.
func TestMultiNodeSkewedPartition(t *testing.T) {
	// ~95% "zzzhotkey" tokens, 5% unique cold keys.
	var b strings.Builder
	for i := 0; i < 20000; i++ {
		if i%20 == 0 {
			fmt.Fprintf(&b, "cold%05d ", i)
		} else {
			b.WriteString("zzzhotkey ")
		}
		if i%12 == 11 {
			b.WriteByte('\n')
		}
	}
	text := []byte(b.String())

	cfg := applyIngestEnv(Config{Runtime: RuntimeSupMR, Workers: 4, ChunkBytes: 16 << 10})
	base, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := renderPairs(base.Pairs)

	off := false
	for _, comb := range []bool{true, false} {
		c := cfg
		c.Nodes = 4
		if !comb {
			c.InNodeCombiner = &off
		}
		rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), c)
		if err != nil {
			t.Fatalf("combiner=%v: %v", comb, err)
		}
		if got := renderPairs(rep.Pairs); got != want {
			t.Fatalf("combiner=%v: skewed multi-node output differs from single-node", comb)
		}
		if rep.Stats.ShuffleBytes == 0 || rep.Stats.ShuffleFrames == 0 {
			t.Fatalf("combiner=%v: nothing crossed the wire (%d bytes, %d frames); the skew test is vacuous",
				comb, rep.Stats.ShuffleBytes, rep.Stats.ShuffleFrames)
		}
		var hot int64
		for _, p := range rep.Pairs {
			if p.Key == "zzzhotkey" {
				hot = p.Val
			}
		}
		if hot != 19000 {
			t.Fatalf("combiner=%v: hot key counted %d times, want 19000", comb, hot)
		}
	}
}

// TestMultiNodeRejections pins the configurations multi-node mode must
// refuse rather than reinterpret.
func TestMultiNodeRejections(t *testing.T) {
	text := genText(t, 16<<10, 43)
	base := Config{Runtime: RuntimeSupMR, Workers: 2, ChunkBytes: 4 << 10, Nodes: 2}

	if _, err := RunBytes[string, []string](InvertedIndexJob(), text, InvertedIndexJob().NewContainer(8), base); err == nil {
		t.Fatal("invindex ([]string values, no wire codec) accepted on a cluster")
	}

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"traditional", func(c *Config) { c.Runtime = RuntimeTraditional }},
		{"memo", func(c *Config) { c.Memo = true }},
		{"adaptive", func(c *Config) { c.AdaptiveChunks = true }},
		{"reset-each-round", func(c *Config) { c.ResetEachRound = true }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(8), cfg); err == nil {
			t.Fatalf("%s: accepted alongside Nodes, want rejection", tc.name)
		}
	}

	eng := NewEngine(EngineConfig{Workers: 2})
	defer eng.Close()
	cfg := base
	cfg.Engine = eng
	if _, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(8), cfg); err == nil {
		t.Fatal("engine submission with Nodes accepted, want rejection")
	}
}

// TestDifferentialSortHashContainer covers sort's second compatible
// container (hash-partitioned) against the key-range default under the
// SupMR runtime: the container choice must not change the output.
func TestDifferentialSortHashContainer(t *testing.T) {
	const records = 800
	tera := make([]byte, records*100)
	workload.TeraGen{Seed: 23}.Fill()(0, tera)
	job := SortJob()
	cfg := applyIngestEnv(Config{Runtime: RuntimeSupMR, Workers: 4, ChunkBytes: 20 << 10, Boundary: CRLFRecords})
	keyrange, err := RunBytes[string, uint64](job, tera, SortContainer(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := RunBytes[string, uint64](job, tera, job.NewHashContainer(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderPairs(keyrange.Pairs), renderPairs(hashed.Pairs); a != b {
		t.Fatalf("containers disagree: keyrange %d pairs, hash %d pairs", len(keyrange.Pairs), len(hashed.Pairs))
	}
}
