package supmr

// Randomized differential testing across the two runtimes: for every
// application and every compatible container, the traditional runtime
// and the SupMR pipeline must produce byte-identical output over the
// same randomly generated input. The runtimes share only the app and
// container code, so agreement here pins down the pipeline's
// correctness (chunking, persistent container, p-way merge) against
// the straightforward ingest-everything baseline.
//
// Exclusions, by construction rather than by bug:
//   - kmeans: an iterative driver over many SupMR jobs, not one job.
//   - OpenMP sort: not a kv.App; it has its own comparison tests.
//   - invindex over RunFiles: the app attributes words to chunk file
//     names, and the two runtimes chunk multi-file input differently,
//     so only the single-buffer (RunBytes) case is comparable.

import (
	"fmt"
	"strings"
	"testing"

	"supmr/internal/workload"
)

// renderPairs flattens any output for byte-exact comparison.
func renderPairs[K comparable, V any](pairs []Pair[K, V]) string {
	var b strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&b, "%v=%v\n", p.Key, p.Val)
	}
	return b.String()
}

// diffRun executes the job under both runtimes over data and fails on
// any output difference. mkCont builds a fresh container per run.
func diffRun[K comparable, V any](t *testing.T, job Job[K, V], mkCont func() Container[K, V], data []byte, cfg Config) {
	t.Helper()
	cfg = applyIngestEnv(cfg)
	cfg.Workers = 4
	cfg.Runtime = RuntimeTraditional
	trad, err := RunBytes(job, data, mkCont(), cfg)
	if err != nil {
		t.Fatalf("traditional: %v", err)
	}
	cfg.Runtime = RuntimeSupMR
	sup, err := RunBytes(job, data, mkCont(), cfg)
	if err != nil {
		t.Fatalf("supmr: %v", err)
	}
	if sup.Stats.MapWaves < 2 {
		t.Fatalf("supmr ran %d map waves; the differential run must be multi-chunk", sup.Stats.MapWaves)
	}
	a, b := renderPairs(trad.Pairs), renderPairs(sup.Pairs)
	if a != b {
		t.Fatalf("outputs differ: traditional %d pairs/%d bytes, supmr %d pairs/%d bytes",
			len(trad.Pairs), len(a), len(sup.Pairs), len(b))
	}
	if len(trad.Pairs) == 0 {
		t.Fatal("no output; the comparison is vacuous")
	}
}

func TestDifferentialRuntimes(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		seed := seed
		text := genText(t, 128<<10, seed)
		cfg := Config{ChunkBytes: 16 << 10}

		t.Run(fmt.Sprintf("seed%d/wordcount-flat", seed), func(t *testing.T) {
			diffRun[string, int64](t, WordCountJob(),
				func() Container[string, int64] { return WordCountContainer(16) }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/wordcount-map", seed), func(t *testing.T) {
			diffRun[string, int64](t, WordCountJob(),
				func() Container[string, int64] { return WordCountMapContainer(16) }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/grep-flat", seed), func(t *testing.T) {
			job := GrepJob("ba", "zo", "nowhere-to-be-found")
			diffRun[string, int64](t, job,
				func() Container[string, int64] { return job.NewContainer() }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/grep-map", seed), func(t *testing.T) {
			job := GrepJob("ba", "zo")
			diffRun[string, int64](t, job,
				func() Container[string, int64] { return job.NewMapContainer() }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/histogram", seed), func(t *testing.T) {
			job := HistogramJob()
			diffRun[int, int64](t, job,
				func() Container[int, int64] { return job.NewContainer(8) }, text, cfg)
		})
		t.Run(fmt.Sprintf("seed%d/linreg", seed), func(t *testing.T) {
			job := LinearRegressionJob()
			lrCfg := cfg
			lrCfg.Boundary = FixedRecords(2)
			diffRun[int, float64](t, job,
				func() Container[int, float64] { return job.NewContainer() }, text, lrCfg)
		})
		t.Run(fmt.Sprintf("seed%d/invindex", seed), func(t *testing.T) {
			mk := func() Container[string, []string] { return InvertedIndexJob().NewContainer(16) }
			// Fresh job per run: the app carries per-run chunk attribution
			// state (set_data), so sharing one instance would leak file
			// names across runs.
			diffCfg := applyIngestEnv(cfg)
			diffCfg.Workers = 4
			diffCfg.Runtime = RuntimeTraditional
			trad, err := RunBytes[string, []string](InvertedIndexJob(), text, mk(), diffCfg)
			if err != nil {
				t.Fatalf("traditional: %v", err)
			}
			diffCfg.Runtime = RuntimeSupMR
			sup, err := RunBytes[string, []string](InvertedIndexJob(), text, mk(), diffCfg)
			if err != nil {
				t.Fatalf("supmr: %v", err)
			}
			if a, b := renderPairs(trad.Pairs), renderPairs(sup.Pairs); a != b {
				t.Fatalf("outputs differ: traditional %d pairs, supmr %d pairs", len(trad.Pairs), len(sup.Pairs))
			}
		})
		t.Run(fmt.Sprintf("seed%d/sort", seed), func(t *testing.T) {
			const records = 1200
			tera := make([]byte, records*100)
			workload.TeraGen{Seed: uint64(seed)}.Fill()(0, tera)
			job := SortJob()
			sortCfg := cfg
			sortCfg.Boundary = CRLFRecords
			sortCfg.ChunkBytes = 20 << 10
			diffRun[string, uint64](t, job,
				func() Container[string, uint64] { return SortContainer() }, tera, sortCfg)
		})
	}
}

// TestDifferentialSortHashContainer covers sort's second compatible
// container (hash-partitioned) against the key-range default under the
// SupMR runtime: the container choice must not change the output.
func TestDifferentialSortHashContainer(t *testing.T) {
	const records = 800
	tera := make([]byte, records*100)
	workload.TeraGen{Seed: 23}.Fill()(0, tera)
	job := SortJob()
	cfg := applyIngestEnv(Config{Runtime: RuntimeSupMR, Workers: 4, ChunkBytes: 20 << 10, Boundary: CRLFRecords})
	keyrange, err := RunBytes[string, uint64](job, tera, SortContainer(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := RunBytes[string, uint64](job, tera, job.NewHashContainer(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderPairs(keyrange.Pairs), renderPairs(hashed.Pairs); a != b {
		t.Fatalf("containers disagree: keyrange %d pairs, hash %d pairs", len(keyrange.Pairs), len(hashed.Pairs))
	}
}
