package supmr

import (
	"errors"
	"io"
	"testing"

	"supmr/internal/chunk"
)

// Tests of the facade's configuration plumbing: stream construction,
// default selection, and option interactions.

func TestConfigMergeDefaults(t *testing.T) {
	if got := (Config{Runtime: RuntimeTraditional}).mergeAlgo(); got != MergePairwise {
		t.Errorf("traditional default merge = %v", got)
	}
	if got := (Config{Runtime: RuntimeSupMR}).mergeAlgo(); got != MergePWay {
		t.Errorf("SupMR default merge = %v", got)
	}
	m := MergePairwise
	if got := (Config{Runtime: RuntimeSupMR, Merge: &m}).mergeAlgo(); got != MergePairwise {
		t.Errorf("override merge = %v", got)
	}
}

func TestConfigBoundaryDefault(t *testing.T) {
	if _, ok := (Config{}).boundary().(chunk.NewlineBoundary); !ok {
		t.Error("default boundary should be newline")
	}
	if _, ok := (Config{Boundary: CRLFRecords}).boundary().(chunk.CRLFBoundary); !ok {
		t.Error("explicit boundary not honored")
	}
}

func TestRuntimeString(t *testing.T) {
	if RuntimeTraditional.String() != "traditional" || RuntimeSupMR.String() != "supmr" {
		t.Error("runtime names wrong")
	}
}

func drainStream(t *testing.T, s Stream) []*Chunk {
	t.Helper()
	var out []*Chunk
	for {
		c, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
}

func TestStreamFileTraditionalIsWholeInput(t *testing.T) {
	clock := NewClock()
	f := MemoryFile("x", []byte("one\ntwo\nthree\n"), clock)
	s, err := StreamFile(f, Config{Runtime: RuntimeTraditional, ChunkBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drainStream(t, s)
	if len(chunks) != 1 {
		t.Errorf("traditional stream produced %d chunks, want 1", len(chunks))
	}
}

func TestStreamFileSupMRChunks(t *testing.T) {
	clock := NewClock()
	f := MemoryFile("x", []byte("one\ntwo\nthree\nfour\n"), clock)
	s, err := StreamFile(f, Config{Runtime: RuntimeSupMR, ChunkBytes: 5})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drainStream(t, s)
	if len(chunks) < 2 {
		t.Errorf("SupMR stream produced %d chunks, want several", len(chunks))
	}
	// Zero chunk size degenerates to whole input even under SupMR.
	s2, err := StreamFile(f, Config{Runtime: RuntimeSupMR})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainStream(t, s2); len(got) != 1 {
		t.Errorf("zero-chunk SupMR stream produced %d chunks", len(got))
	}
}

func TestStreamFilesVariants(t *testing.T) {
	clock := NewClock()
	var files []Input
	for i := 0; i < 6; i++ {
		files = append(files, MemoryFile("f", []byte("abc def\n"), clock))
	}
	// Intra-file: 6 files at 2/chunk -> 3 chunks.
	s, err := StreamFiles(files, Config{Runtime: RuntimeSupMR, FilesPerChunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainStream(t, s); len(got) != 3 {
		t.Errorf("intra-file stream produced %d chunks, want 3", len(got))
	}
	// Hybrid with default size coalesces all small files into one chunk.
	s2, err := StreamFiles(files, Config{Runtime: RuntimeSupMR, HybridChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainStream(t, s2); len(got) != 1 {
		t.Errorf("hybrid stream produced %d chunks, want 1", len(got))
	}
	// Traditional collapses either way.
	s3, err := StreamFiles(files, Config{Runtime: RuntimeTraditional, FilesPerChunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainStream(t, s3); len(got) != 1 {
		t.Errorf("traditional multi-file stream produced %d chunks", len(got))
	}
	// Empty input rejected.
	if _, err := StreamFiles(nil, Config{}); err == nil {
		t.Error("empty file list accepted")
	}
}

func TestAdaptiveWithoutChunkBytesUsesRecommendation(t *testing.T) {
	clock := NewClock()
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = 'a'
		if i%64 == 63 {
			data[i] = '\n'
		}
	}
	f := MemoryFile("x", data, clock)
	rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(8), Config{
		Runtime:        RuntimeSupMR,
		AdaptiveChunks: true, // no ChunkBytes: the advisor picks
		Clock:          clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.BytesIngested != int64(len(data)) {
		t.Errorf("ingested %d of %d", rep.Stats.BytesIngested, len(data))
	}
	if rep.Stats.MapWaves < 2 {
		t.Errorf("advisor produced %d waves, want pipelining", rep.Stats.MapWaves)
	}
}

func TestReportStatsPlumbing(t *testing.T) {
	data := []byte("x x y\nz z z\n")
	rep, err := RunBytes[string, int64](WordCountJob(), data, WordCountContainer(4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.OutputPairs != len(rep.Pairs) {
		t.Errorf("OutputPairs = %d, pairs = %d", rep.Stats.OutputPairs, len(rep.Pairs))
	}
	if rep.Stats.IntermediateN != 3 {
		t.Errorf("IntermediateN = %d, want 3 distinct words", rep.Stats.IntermediateN)
	}
	if rep.Trace != nil || rep.Markers != nil {
		t.Error("tracing disabled but trace/markers present")
	}
}

func TestValidateSortedPairs(t *testing.T) {
	good := []Pair[string, uint64]{{Key: "a"}, {Key: "b"}, {Key: "c"}}
	chk := ValidateSortedPairs(good)
	if !chk.Ordered || chk.Records != 3 || chk.FirstKey != "a" || chk.LastKey != "c" {
		t.Errorf("check = %+v", chk)
	}
	bad := []Pair[string, uint64]{{Key: "b"}, {Key: "a"}}
	if ValidateSortedPairs(bad).Ordered {
		t.Error("unsorted pairs reported ordered")
	}
}

func TestSortOutputsShareChecksum(t *testing.T) {
	data := make([]byte, 5000*100)
	TeraFill(3)(0, data)
	run := func(rt Runtime) SortCheck {
		rep, err := RunBytes[string, uint64](SortJob(), data, SortContainer(), Config{
			Runtime: rt, ChunkBytes: 64 << 10, Boundary: CRLFRecords,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ValidateSortedPairs(rep.Pairs)
	}
	a := run(RuntimeTraditional)
	b := run(RuntimeSupMR)
	if !a.Ordered || !b.Ordered {
		t.Fatal("outputs not ordered")
	}
	if a.Sum != b.Sum || a.Records != b.Records {
		t.Errorf("checksums differ: %+v vs %+v", a, b)
	}
}

func TestStatsBusyTimes(t *testing.T) {
	data := make([]byte, 256<<10)
	TextFill(7)(0, data)
	rep, err := RunBytes[string, int64](WordCountJob(), data, WordCountContainer(16), Config{
		Runtime: RuntimeSupMR, ChunkBytes: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.MapBusy <= 0 {
		t.Error("MapBusy not accounted")
	}
	if rep.Stats.ReduceBusy <= 0 {
		t.Error("ReduceBusy not accounted")
	}
}

func TestFacadeJobConstructors(t *testing.T) {
	// Histogram through the facade with the array container.
	h := HistogramJob()
	rep, err := RunBytes[int, int64](h, []byte{0, 1, 1, 255}, h.NewContainer(4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int64{}
	for _, p := range rep.Pairs {
		counts[p.Key] = p.Val
	}
	if counts[0] != 1 || counts[1] != 2 || counts[255] != 1 {
		t.Errorf("histogram = %v", counts)
	}

	// Inverted index through the facade over two files.
	clock := NewClock()
	files := []Input{
		MemoryFile("a.txt", []byte("apple pie\n"), clock),
		MemoryFile("b.txt", []byte("apple tart\n"), clock),
	}
	ix := InvertedIndexJob()
	rep2, err := RunFiles[string, []string](ix, files, ix.NewContainer(8), Config{
		Runtime: RuntimeSupMR, FilesPerChunk: 1, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	var appleDocs []string
	for _, p := range rep2.Pairs {
		if p.Key == "apple" {
			appleDocs = p.Val
		}
	}
	if len(appleDocs) != 2 {
		t.Errorf("apple postings = %v", appleDocs)
	}
}

func TestFacadeContainerConstructors(t *testing.T) {
	arr := NewArrayContainer[int64](8, 2, func(a, b int64) int64 { return a + b })
	l := arr.NewLocal()
	l.Emit(3, 5)
	l.Flush()
	if arr.Len() != 1 {
		t.Errorf("array container Len = %d", arr.Len())
	}
	kr := NewKeyRangeContainer[string, int](4)
	l2 := kr.NewLocal()
	l2.Emit("k", 1)
	l2.Flush()
	if kr.Len() != 1 {
		t.Errorf("key-range container Len = %d", kr.Len())
	}
	if HashInt(3) == HashInt(4) {
		t.Error("HashInt collision")
	}
	if HashUint64(3) == HashUint64(4) {
		t.Error("HashUint64 collision")
	}
}

func TestOpenMPSortFileUntraced(t *testing.T) {
	clock := NewClock()
	f, err := TeraFile("t", 2000, 5, NewFastDevice(clock))
	if err != nil {
		t.Fatal(err)
	}
	res, err := OpenMPSortFile(f, 2, clock)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2000 {
		t.Errorf("sorted %d records", len(res.Pairs))
	}
	chk := ValidateSortedPairs(res.Pairs)
	if !chk.Ordered {
		t.Error("OpenMP output unsorted")
	}
	// Nil clock path.
	f2, err := TeraFile("t2", 100, 5, NewFastDevice(NewClock()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMPSortFile(f2, 1, nil); err != nil {
		t.Errorf("nil-clock OpenMPSortFile failed: %v", err)
	}
}

func TestNewHDFSWithAccessPorts(t *testing.T) {
	clock := NewClock()
	c, err := NewHDFS(HDFSConfig{
		Nodes: 4, BlockSize: 64 << 10, DiskBW: 1 << 30,
		LinkBW: 32 << 20, AccessBW: 128 << 20,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Create("x", 256<<10, TextFill(2))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256<<10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if c.Link().Stats().BytesMoved != 256<<10 {
		t.Errorf("uplink moved %d bytes", c.Link().Stats().BytesMoved)
	}
	// Invalid link bandwidth propagates.
	if _, err := NewHDFS(HDFSConfig{Nodes: 2, BlockSize: 1024, DiskBW: 1, LinkBW: 0}, clock); err == nil {
		t.Error("zero link bandwidth accepted")
	}
	if _, err := NewHDFS(HDFSConfig{Nodes: 2, BlockSize: 1024, DiskBW: 1, LinkBW: 0, AccessBW: 1}, clock); err == nil {
		t.Error("zero uplink with access ports accepted")
	}
}
