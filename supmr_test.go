package supmr

import (
	"context"
	"errors"
	"strings"
	"testing"

	"supmr/internal/kv"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

// refWordCount computes word counts the boring way.
func refWordCount(text []byte) map[string]int64 {
	counts := make(map[string]int64)
	for _, w := range strings.Fields(string(text)) {
		counts[w]++
	}
	return counts
}

func genText(t *testing.T, size int64, seed int64) []byte {
	t.Helper()
	buf := make([]byte, size)
	workload.TextGen{Seed: seed}.Fill()(0, buf)
	return buf
}

func checkWordCounts(t *testing.T, pairs []Pair[string, int64], want map[string]int64) {
	t.Helper()
	if len(pairs) != len(want) {
		t.Fatalf("got %d distinct words, want %d", len(pairs), len(want))
	}
	for i, p := range pairs {
		if i > 0 && pairs[i-1].Key >= p.Key {
			t.Fatalf("output not strictly sorted at %d: %q >= %q", i, pairs[i-1].Key, p.Key)
		}
		if want[p.Key] != p.Val {
			t.Fatalf("count for %q = %d, want %d", p.Key, p.Val, want[p.Key])
		}
	}
}

func TestWordCountTraditionalMatchesReference(t *testing.T) {
	text := genText(t, 64<<10, 1)
	want := refWordCount(text)
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), Config{
		Runtime: RuntimeTraditional,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, rep.Pairs, want)
	if rep.Stats.MapWaves != 1 {
		t.Errorf("traditional runtime ran %d map waves, want 1", rep.Stats.MapWaves)
	}
}

func TestWordCountSupMRMatchesTraditional(t *testing.T) {
	text := genText(t, 64<<10, 2)
	want := refWordCount(text)
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), Config{
		Runtime:    RuntimeSupMR,
		Workers:    4,
		ChunkBytes: 7 << 10, // ~10 chunks
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, rep.Pairs, want)
	if rep.Stats.MapWaves < 8 {
		t.Errorf("SupMR ran %d map waves, want several (chunked input)", rep.Stats.MapWaves)
	}
}

func TestSortBothRuntimesSortedAndEqual(t *testing.T) {
	const records = 5000
	data := make([]byte, records*workload.TeraRecordSize)
	workload.TeraGen{Seed: 42}.Fill()(0, data)

	run := func(rt Runtime, chunkBytes int64) []Pair[string, uint64] {
		t.Helper()
		rep, err := RunBytes[string, uint64](SortJob(), data, SortContainer(), Config{
			Runtime:    rt,
			Workers:    4,
			ChunkBytes: chunkBytes,
			Boundary:   CRLFRecords,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Pairs
	}

	base := run(RuntimeTraditional, 0)
	sup := run(RuntimeSupMR, 64<<10)

	if len(base) != records || len(sup) != records {
		t.Fatalf("output sizes: baseline=%d supmr=%d, want %d", len(base), len(sup), records)
	}
	less := kv.Less[string](func(a, b string) bool { return a < b })
	if !kv.IsSortedPairs(base, less) {
		t.Error("baseline output not sorted")
	}
	if !kv.IsSortedPairs(sup, less) {
		t.Error("SupMR output not sorted")
	}
	for i := range base {
		if base[i] != sup[i] {
			t.Fatalf("outputs differ at %d: baseline=%v supmr=%v", i, base[i], sup[i])
		}
	}
}

func TestPersistentContainerAblationLosesData(t *testing.T) {
	// With the container re-initialized each round (the traditional
	// behaviour §III-C removes), only the last chunk's words survive.
	text := genText(t, 64<<10, 3)
	want := refWordCount(text)
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), Config{
		Runtime:        RuntimeSupMR,
		Workers:        4,
		ChunkBytes:     7 << 10,
		ResetEachRound: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range rep.Pairs {
		total += p.Val
	}
	var wantTotal int64
	for _, c := range want {
		wantTotal += c
	}
	if total >= wantTotal {
		t.Fatalf("ablation kept %d word occurrences, want fewer than %d (data loss expected)", total, wantTotal)
	}
}

func TestRunContextCancelled(t *testing.T) {
	// A cancelled RunContext job returns context.Canceled promptly in
	// both runtimes, instead of running to completion.
	text := genText(t, 64<<10, 4)
	for _, rt := range []Runtime{RuntimeTraditional, RuntimeSupMR} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		clk := storage.NewFakeClock()
		f := storage.BytesFile("in", text, storage.NewNullDevice(clk))
		cfg := Config{Runtime: rt, Workers: 2, ChunkBytes: 4 << 10, Clock: clk}
		stream, err := StreamFile(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = RunContext[string, int64](ctx, WordCountJob(), stream, WordCountContainer(8), cfg)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", rt, err)
		}
	}
	// An un-cancelled context changes nothing.
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(8), Config{
		Runtime: RuntimeSupMR, Workers: 2, ChunkBytes: 7 << 10, Context: context.Background(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, rep.Pairs, refWordCount(text))
}

func TestRunValidation(t *testing.T) {
	if _, err := Run[string, int64](nil, nil, nil, Config{}); err == nil {
		t.Error("Run with nil job should fail")
	}
	if _, err := RunFile[string, int64](WordCountJob(), nil, WordCountContainer(4), Config{}); err == nil {
		t.Error("RunFile with nil file should fail")
	}
}
