package supmr

// Engine-mode differential tests: N concurrent jobs over one shared
// Engine must produce output byte-identical to the same jobs run solo,
// including a job under a tight memory budget (spilling) and a job
// under fault injection — and the engine must not leak goroutines.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"supmr/internal/workload"
)

// engineJob is one submission of the concurrent fleet: run executes it
// with the given config (cfg.Engine set for engine mode, nil for solo)
// and returns rendered output for byte comparison.
type engineJob struct {
	name string
	run  func(cfg Config) (string, *Report[string, int64], error)
}

// renderU64 renders sort output for byte-exact comparison.
func renderU64(pairs []Pair[string, uint64]) string {
	var b strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&b, "%q=%d\n", p.Key, p.Val)
	}
	return b.String()
}

// engineFleet builds the mixed 4-job workload of the acceptance
// criterion: two plain word counts over different texts, one word count
// under a tight memory budget (spills every round), and one word count
// under deterministic transient fault injection with retries.
func engineFleet(t *testing.T) []engineJob {
	t.Helper()
	textA := genText(t, 96<<10, 3)
	textB := genText(t, 128<<10, 19)
	textC := genText(t, 96<<10, 7)
	base := Config{Runtime: RuntimeSupMR, ChunkBytes: 16 << 10}
	wc := func(text []byte, mutate func(*Config)) func(cfg Config) (string, *Report[string, int64], error) {
		return func(cfg Config) (string, *Report[string, int64], error) {
			cfg.Runtime = base.Runtime
			cfg.ChunkBytes = base.ChunkBytes
			if mutate != nil {
				mutate(&cfg)
			}
			rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), cfg)
			if err != nil {
				return "", nil, err
			}
			return renderWC(rep.Pairs), rep, nil
		}
	}
	return []engineJob{
		{name: "wordcount-a", run: wc(textA, nil)},
		{name: "wordcount-b", run: wc(textB, nil)},
		{name: "wordcount-spill", run: wc(textC, func(cfg *Config) {
			cfg.MemoryBudget = 32 << 10 // tight: forces spill rounds
		})},
		{name: "wordcount-faults", run: wc(textA, func(cfg *Config) {
			// Fresh injector per run: determinism comes from the plan.
			cfg.Faults = NewFaultInjector(FaultPlan{Seed: 7, ReadErrEvery: 5}, nil)
			cfg.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}
		})},
	}
}

func TestEngineConcurrentJobsMatchSolo(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	fleet := engineFleet(t)

	// Solo baselines: each job on its own dedicated pool.
	solo := make([]string, len(fleet))
	for i, j := range fleet {
		out, _, err := j.run(Config{Workers: 4})
		if err != nil {
			t.Fatalf("%s: solo run failed: %v", j.name, err)
		}
		if out == "" {
			t.Fatalf("%s: solo run produced no output", j.name)
		}
		solo[i] = out
	}

	// The same four jobs concurrently over one shared engine, with a
	// global memory budget covering the spilling job's request.
	e := NewEngine(EngineConfig{Workers: 4, MaxJobs: 4, MemoryBudget: 4 * 32 << 10})
	var wg sync.WaitGroup
	outs := make([]string, len(fleet))
	reps := make([]*Report[string, int64], len(fleet))
	errs := make([]error, len(fleet))
	for i, j := range fleet {
		wg.Add(1)
		go func(i int, j engineJob) {
			defer wg.Done()
			outs[i], reps[i], errs[i] = j.run(Config{Engine: e, Tenant: j.name})
		}(i, j)
	}
	wg.Wait()
	for i, j := range fleet {
		if errs[i] != nil {
			t.Fatalf("%s: engine run failed: %v", j.name, errs[i])
		}
		if outs[i] != solo[i] {
			t.Errorf("%s: engine output differs from solo run (%d vs %d bytes)", j.name, len(outs[i]), len(solo[i]))
		}
	}

	// Per-job stats isolation: each report's counters must describe its
	// own submission, not the fleet.
	if reps[0].Stats.BytesIngested != reps[3].Stats.BytesIngested {
		t.Errorf("same-input jobs ingested different byte counts: %d vs %d",
			reps[0].Stats.BytesIngested, reps[3].Stats.BytesIngested)
	}
	if reps[0].Stats.BytesIngested == reps[1].Stats.BytesIngested {
		t.Error("different-size jobs report identical BytesIngested; counters look shared")
	}
	if reps[2].Stats.SpilledRuns == 0 {
		t.Error("budgeted job spilled nothing; the budget was not applied")
	}
	for i, j := range fleet {
		if i == 2 {
			continue
		}
		if reps[i].Stats.SpilledRuns != 0 {
			t.Errorf("%s: unbudgeted job reports %d spilled runs; spill stats bleed across jobs", j.name, reps[i].Stats.SpilledRuns)
		}
		if reps[i].Stats.Tasks["map"].Tasks == 0 {
			t.Errorf("%s: no map tasks in per-job stats", j.name)
		}
	}
	if reps[3].Stats.Faults.Injected == 0 {
		t.Error("faulted job reports no injected faults")
	}
	if reps[0].Stats.Faults.Any() {
		t.Error("fault-free job reports injected faults; fault counters bleed across jobs")
	}

	// Engine rollup: four submissions, four tenants, all completed.
	es := e.Stats()
	if es.Submitted != 4 || es.Completed != 4 || es.Failed != 0 || es.Rejected != 0 {
		t.Errorf("engine counters: submitted=%d completed=%d failed=%d rejected=%d, want 4/4/0/0",
			es.Submitted, es.Completed, es.Failed, es.Rejected)
	}
	if len(es.Tenants) != 4 {
		t.Errorf("tenant rollup has %d entries, want 4: %v", len(es.Tenants), es.Tenants)
	}
	for i, j := range fleet {
		ts := es.Tenants[j.name]
		if ts.Jobs != 1 || ts.Failed != 0 {
			t.Errorf("tenant %s rollup: jobs=%d failed=%d, want 1/0", j.name, ts.Jobs, ts.Failed)
		}
		if ts.BytesIngested != reps[i].Stats.BytesIngested {
			t.Errorf("tenant %s rollup ingested %d bytes, report says %d", j.name, ts.BytesIngested, reps[i].Stats.BytesIngested)
		}
	}
	if es.BudgetRemaining != es.BudgetTotal {
		t.Errorf("budget not fully released: remaining %d of %d", es.BudgetRemaining, es.BudgetTotal)
	}
	if es.ChunkGets == 0 {
		t.Error("shared freelist saw no chunk acquisitions")
	}

	e.Close()
	e.Close() // idempotent
	checkNoGoroutineLeak(t, baseGoroutines)
}

// TestEngineMixedApps runs a sort job and a word count concurrently on
// one engine: different key/value types, containers and boundaries on
// the same substrate, each byte-identical to its solo run.
func TestEngineMixedApps(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	text := genText(t, 96<<10, 5)
	const records = 800
	tera := make([]byte, records*100)
	workload.TeraGen{Seed: 23}.Fill()(0, tera)

	runSort := func(cfg Config) (string, error) {
		cfg.Runtime = RuntimeSupMR
		cfg.ChunkBytes = 20 << 10
		cfg.Boundary = CRLFRecords
		rep, err := RunBytes[string, uint64](SortJob(), tera, SortContainer(), cfg)
		if err != nil {
			return "", err
		}
		return renderU64(rep.Pairs), nil
	}
	runWC := func(cfg Config) (string, error) {
		cfg.Runtime = RuntimeSupMR
		cfg.ChunkBytes = 16 << 10
		rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), cfg)
		if err != nil {
			return "", err
		}
		return renderWC(rep.Pairs), nil
	}

	soloSort, err := runSort(Config{Workers: 4})
	if err != nil {
		t.Fatalf("solo sort: %v", err)
	}
	soloWC, err := runWC(Config{Workers: 4})
	if err != nil {
		t.Fatalf("solo wordcount: %v", err)
	}

	e := NewEngine(EngineConfig{Workers: 4, MaxJobs: 2})
	defer e.Close()
	var wg sync.WaitGroup
	var engSort, engWC string
	var errSort, errWC error
	wg.Add(2)
	go func() { defer wg.Done(); engSort, errSort = runSort(Config{Engine: e, Tenant: "sorter", Weight: 2}) }()
	go func() { defer wg.Done(); engWC, errWC = runWC(Config{Engine: e, Tenant: "counter"}) }()
	wg.Wait()
	if errSort != nil || errWC != nil {
		t.Fatalf("engine runs failed: sort=%v wordcount=%v", errSort, errWC)
	}
	if engSort != soloSort {
		t.Errorf("sort output differs between engine and solo run (%d vs %d bytes)", len(engSort), len(soloSort))
	}
	if engWC != soloWC {
		t.Errorf("wordcount output differs between engine and solo run (%d vs %d bytes)", len(engWC), len(soloWC))
	}

	e.Close()
	checkNoGoroutineLeak(t, baseGoroutines)
}

// TestEngineAdmission pins the flow-control surface: a full backlog
// fails fast with ErrBacklogFull, and a closed engine rejects with
// ErrEngineClosed.
func TestEngineAdmission(t *testing.T) {
	text := genText(t, 32<<10, 2)
	run := func(e *Engine) error {
		_, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(8),
			Config{Runtime: RuntimeSupMR, ChunkBytes: 8 << 10, Engine: e})
		return err
	}

	// MaxJobs 1, no backlog: while one job holds the run slot, a second
	// submission is rejected, not queued. The first job is held open by
	// parking its only run slot... simplest deterministic stand-in: take
	// the admission slot directly through a long job is racy, so instead
	// drive the bound via a zero backlog and a slot held by this test.
	zero := 0
	e := NewEngine(EngineConfig{Workers: 2, MaxJobs: 1, MaxPending: &zero})
	defer e.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = RunBytes[string, int64](holdJob{start: started, release: release, once: new(sync.Once)}, text,
			WordCountContainer(8), Config{Runtime: RuntimeSupMR, Engine: e})
	}()
	<-started // the holder is admitted and inside its map wave
	if err := run(e); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("submission with full backlog returned %v, want ErrBacklogFull", err)
	}
	if es := e.Stats(); es.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", es.Rejected)
	}
	close(release)

	e2 := NewEngine(EngineConfig{Workers: 2})
	e2.Close()
	if err := run(e2); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("submission to closed engine returned %v, want ErrEngineClosed", err)
	}
}

// holdJob is a word-count-shaped app whose map phase parks until
// released, keeping its submission admitted.
type holdJob struct {
	start   chan struct{}
	release chan struct{}
	once    *sync.Once
}

func (h holdJob) Map(split []byte, emit Emitter[string, int64]) {
	h.once.Do(func() { close(h.start) })
	<-h.release
	emit.Emit("held", 1)
}

func (h holdJob) Reduce(_ string, vals []int64) int64 {
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum
}

func (h holdJob) Less(a, b string) bool { return a < b }
