module supmr

go 1.24
